//! Real-engine analogue of the simulator's `gc_bounds_state_size` (§6,
//! Figure 6): under the same sustained multi-threaded workload, an engine
//! with the `mvtl-gc` service attached ends with strictly less resident
//! state (stored versions + lock entries) than the same engine without it —
//! and the GC-on engine actually purged something.

use mvtl_workload::{gc_soak, SoakOptions, WorkloadSpec};
use std::time::Duration;

fn soak_options() -> SoakOptions {
    SoakOptions {
        clients: 4,
        duration: Duration::from_millis(300),
        gc_ms: 10,
        gc_lag_ms: 5,
        spec: WorkloadSpec::new(8, 0.5, 256),
        seed: 7,
    }
}

fn assert_gc_bounds_state(base_spec: &str) {
    let report = gc_soak(base_spec, &soak_options());
    assert!(
        report.gc_off.committed > 0 && report.gc_on.committed > 0,
        "{base_spec}: both runs must commit\n{}",
        report.render()
    );
    assert!(
        report.gc_on.stats_end.purged_versions > 0,
        "{base_spec}: the GC service never purged\n{}",
        report.render()
    );
    assert!(
        report.gc_on.stats_end.versions < report.gc_off.stats_end.versions,
        "{base_spec}: GC-on must store strictly fewer versions\n{}",
        report.render()
    );
    assert!(
        report.gc_bounds_state(),
        "{base_spec}: GC-on resident state must stay strictly below GC-off\n{}",
        report.render()
    );
}

// MVTIL serializes up to Δ ticks above "now", and state above the
// active-transaction watermark is not yet safely purgeable, so Δ is also the
// engine's GC horizon: the tests use a small Δ to keep commit timestamps near
// the clock (the default 100k-tick Δ would defer purging past the run).

#[test]
fn gc_bounds_state_size_mvtil_early() {
    assert_gc_bounds_state("mvtil-early?delta=64");
}

#[test]
fn gc_bounds_state_size_sharded() {
    assert_gc_bounds_state("sharded?shards=8&inner=mvtil-early&delta=64");
}

#[test]
fn gc_bounds_state_size_mvto() {
    assert_gc_bounds_state("mvto+");
}
