//! The machine-readable benchmark report: the `BENCH_<name>.json` artifact.
//!
//! [`bench_report`] runs the registry-driven engine grid — every
//! `mvtl_registry::all_specs()` engine, under uniform and zipf(0.99) key
//! skew, batched and unbatched — through the threaded closed-loop runner and
//! collects one [`BenchRow`] per cell: throughput, abort rate, state-size
//! statistics and wall time. The whole [`BenchReport`] serializes to a
//! **versioned** JSON document through the `serde_json` shim
//! ([`BenchReport::to_json_string`] / [`BenchReport::from_json_str`] are
//! exact inverses), which is what CI uploads as `BENCH_smoke.json` and what
//! future changes diff their numbers against.
//!
//! The JSON schema (version 2):
//!
//! ```json
//! {
//!   "schema_version": 2,
//!   "name": "smoke",
//!   "seed": 42,
//!   "wall_secs": 12.5,
//!   "rows": [
//!     {
//!       "spec": "sharded?shards=8&inner=mvtil-early",
//!       "engine": "sharded",
//!       "mode": "open",
//!       "arrivals": "poisson",
//!       "dist": "zipf(0.99)",
//!       "batch": 8,
//!       "clients": 4,
//!       "offered_tps": 12000.0,
//!       "committed": 1234,
//!       "aborted": 56,
//!       "shed": 0,
//!       "elapsed_secs": 0.08,
//!       "throughput_tps": 15425.0,
//!       "abort_rate": 0.043,
//!       "p50_us": 180,
//!       "p99_us": 950,
//!       "p999_us": 2100,
//!       "locks": 321,
//!       "versions": 654,
//!       "purged_versions": 0,
//!       "keys": 512
//!     }
//!   ]
//! }
//! ```
//!
//! Version 2 added the serve-path columns: `mode` distinguishes in-process
//! closed-loop rows (`"closed"`) from open-loop rows measured over TCP by the
//! `mvtl-server` driver (`"open"`); `arrivals`, `offered_tps` and `shed`
//! describe the open-loop schedule, and `p50_us`/`p99_us`/`p999_us` carry the
//! client-observed latency quantiles (zero on closed rows, which measure no
//! per-transaction latency).

use crate::runner::{run_closed_loop, RunnerOptions};
use crate::spec::{KeyDist, WorkloadSpec};
use crate::Scale;
use mvtl_registry::EngineSpec;
use serde_json::Value;
use std::time::{Duration, Instant};

/// Version of the `BENCH_*.json` schema written by [`BenchReport`]. Bump it
/// when a field is renamed, removed or reinterpreted; adding fields is
/// backward compatible.
pub const BENCH_SCHEMA_VERSION: u32 = 2;

/// Measurement mode of a closed-loop row: in-process, throughput-oriented.
pub const MODE_CLOSED: &str = "closed";
/// Measurement mode of an open-loop row: over TCP at a fixed offered load,
/// latency-oriented (produced by the `mvtl-server` driver via `serve_bench`).
pub const MODE_OPEN: &str = "open";

/// One grid cell: a single run of one engine spec under one key distribution
/// and batch size — either an in-process closed-loop run ([`MODE_CLOSED`]) or
/// an open-loop run over the TCP serve-path ([`MODE_OPEN`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// The full engine spec the run was built from.
    pub spec: String,
    /// The engine's base name (what `Engine::name` reports).
    pub engine: String,
    /// Measurement mode: [`MODE_CLOSED`] or [`MODE_OPEN`].
    pub mode: String,
    /// Arrival-process label of an open-loop row ("poisson", "bursty(16)");
    /// `"-"` on closed rows, which have no external arrival schedule.
    pub arrivals: String,
    /// Key-distribution label ("uniform", "zipf(0.99)", ...).
    pub dist: String,
    /// Batch size the runner used (1 = op-by-op).
    pub batch: usize,
    /// Number of client threads (closed) or connections (open).
    pub clients: usize,
    /// Offered load of an open-loop row in transactions per second; 0 on
    /// closed rows (a closed loop offers as much as the system absorbs).
    pub offered_tps: f64,
    /// Committed transactions.
    pub committed: u64,
    /// Aborted transaction attempts.
    pub aborted: u64,
    /// Open-loop arrivals shed because the bounded in-flight queue was full;
    /// 0 on closed rows.
    pub shed: u64,
    /// Measured wall-clock duration of the run in seconds.
    pub elapsed_secs: f64,
    /// Commits per second.
    pub throughput_tps: f64,
    /// Fraction of attempts that aborted.
    pub abort_rate: f64,
    /// Median client-observed latency in microseconds (open rows; 0 closed).
    pub p50_us: u64,
    /// 99th-percentile client-observed latency in microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile client-observed latency in microseconds.
    pub p999_us: u64,
    /// Lock entries resident at the end of the run.
    pub locks: usize,
    /// Stored versions resident at the end of the run.
    pub versions: usize,
    /// Versions purged (by GC or commit-time cleanup) during the run.
    pub purged_versions: usize,
    /// Keys owning engine state at the end of the run.
    pub keys: usize,
}

impl BenchRow {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("spec".to_string(), Value::from(self.spec.clone())),
            ("engine".to_string(), Value::from(self.engine.clone())),
            ("mode".to_string(), Value::from(self.mode.clone())),
            ("arrivals".to_string(), Value::from(self.arrivals.clone())),
            ("dist".to_string(), Value::from(self.dist.clone())),
            ("batch".to_string(), Value::from(self.batch)),
            ("clients".to_string(), Value::from(self.clients)),
            ("offered_tps".to_string(), Value::from(self.offered_tps)),
            ("committed".to_string(), Value::from(self.committed)),
            ("aborted".to_string(), Value::from(self.aborted)),
            ("shed".to_string(), Value::from(self.shed)),
            ("elapsed_secs".to_string(), Value::from(self.elapsed_secs)),
            (
                "throughput_tps".to_string(),
                Value::from(self.throughput_tps),
            ),
            ("abort_rate".to_string(), Value::from(self.abort_rate)),
            ("p50_us".to_string(), Value::from(self.p50_us)),
            ("p99_us".to_string(), Value::from(self.p99_us)),
            ("p999_us".to_string(), Value::from(self.p999_us)),
            ("locks".to_string(), Value::from(self.locks)),
            ("versions".to_string(), Value::from(self.versions)),
            (
                "purged_versions".to_string(),
                Value::from(self.purged_versions),
            ),
            ("keys".to_string(), Value::from(self.keys)),
        ])
    }

    fn from_json(value: &Value) -> Result<BenchRow, String> {
        Ok(BenchRow {
            spec: req_str(value, "spec")?,
            engine: req_str(value, "engine")?,
            mode: req_str(value, "mode")?,
            arrivals: req_str(value, "arrivals")?,
            dist: req_str(value, "dist")?,
            batch: req_u64(value, "batch")? as usize,
            clients: req_u64(value, "clients")? as usize,
            offered_tps: req_f64(value, "offered_tps")?,
            committed: req_u64(value, "committed")?,
            aborted: req_u64(value, "aborted")?,
            shed: req_u64(value, "shed")?,
            elapsed_secs: req_f64(value, "elapsed_secs")?,
            throughput_tps: req_f64(value, "throughput_tps")?,
            abort_rate: req_f64(value, "abort_rate")?,
            p50_us: req_u64(value, "p50_us")?,
            p99_us: req_u64(value, "p99_us")?,
            p999_us: req_u64(value, "p999_us")?,
            locks: req_u64(value, "locks")? as usize,
            versions: req_u64(value, "versions")? as usize,
            purged_versions: req_u64(value, "purged_versions")? as usize,
            keys: req_u64(value, "keys")? as usize,
        })
    }
}

/// A whole benchmark run: the versioned artifact CI uploads as
/// `BENCH_<name>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version of the document ([`BENCH_SCHEMA_VERSION`] on write).
    pub schema_version: u32,
    /// Report name; the artifact file is `BENCH_<name>.json`.
    pub name: String,
    /// Base seed every run derived its RNG streams from.
    pub seed: u64,
    /// Total wall-clock time spent producing the report, in seconds.
    pub wall_secs: f64,
    /// One row per grid cell.
    pub rows: Vec<BenchRow>,
}

fn req<'v>(value: &'v Value, field: &str) -> Result<&'v Value, String> {
    value.get(field).ok_or_else(|| format!("missing {field:?}"))
}

fn req_str(value: &Value, field: &str) -> Result<String, String> {
    req(value, field)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{field:?} is not a string"))
}

fn req_u64(value: &Value, field: &str) -> Result<u64, String> {
    req(value, field)?
        .as_u64()
        .ok_or_else(|| format!("{field:?} is not a non-negative integer"))
}

fn req_f64(value: &Value, field: &str) -> Result<f64, String> {
    req(value, field)?
        .as_f64()
        .ok_or_else(|| format!("{field:?} is not a number"))
}

impl BenchReport {
    /// The report as a `serde_json` value tree.
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            (
                "schema_version".to_string(),
                Value::from(self.schema_version),
            ),
            ("name".to_string(), Value::from(self.name.clone())),
            ("seed".to_string(), Value::from(self.seed)),
            ("wall_secs".to_string(), Value::from(self.wall_secs)),
            (
                "rows".to_string(),
                Value::Array(self.rows.iter().map(BenchRow::to_json).collect()),
            ),
        ])
    }

    /// Serializes the report as pretty-printed JSON — the exact bytes of the
    /// `BENCH_<name>.json` artifact.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let mut out = serde_json::to_string_pretty(&self.to_json());
        out.push('\n');
        out
    }

    /// Parses a report back from its JSON serialization.
    /// [`BenchReport::to_json_string`] and this function are exact inverses
    /// (floats included), which the CI smoke step asserts on every run.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem: JSON syntax errors,
    /// missing or mistyped fields, or an unsupported `schema_version`.
    pub fn from_json_str(input: &str) -> Result<BenchReport, String> {
        let value = serde_json::from_str(input).map_err(|e| e.to_string())?;
        let schema_version = req_u64(&value, "schema_version")? as u32;
        if schema_version != BENCH_SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {schema_version} (this build reads \
                 {BENCH_SCHEMA_VERSION})"
            ));
        }
        let rows = req(&value, "rows")?
            .as_array()
            .ok_or_else(|| "\"rows\" is not an array".to_string())?
            .iter()
            .map(BenchRow::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchReport {
            schema_version,
            name: req_str(&value, "name")?,
            seed: req_u64(&value, "seed")?,
            wall_secs: req_f64(&value, "wall_secs")?,
            rows,
        })
    }

    /// Drops duplicate grid cells, keeping the **newest** (last) row for
    /// each `(spec, engine, mode, arrivals, dist, batch, clients,
    /// offered_tps)` cell and preserving row order otherwise. Both report
    /// binaries call this before writing `BENCH_<name>.json`, so repeated
    /// local runs that merge into an existing artifact replace their cells
    /// instead of accumulating copies.
    pub fn dedupe_rows(&mut self) {
        let mut seen = std::collections::HashSet::new();
        let mut kept: Vec<BenchRow> = self
            .rows
            .drain(..)
            .rev()
            .filter(|row| {
                seen.insert((
                    row.spec.clone(),
                    row.engine.clone(),
                    row.mode.clone(),
                    row.arrivals.clone(),
                    row.dist.clone(),
                    row.batch,
                    row.clients,
                    // f64 is not Hash; offered loads are computed, not
                    // accumulated, so bit-identity is the right equality.
                    row.offered_tps.to_bits(),
                ))
            })
            .collect();
        kept.reverse();
        self.rows = kept;
    }

    /// The rows of one engine spec, in grid order.
    #[must_use]
    pub fn rows_for(&self, spec: &str) -> Vec<&BenchRow> {
        self.rows.iter().filter(|r| r.spec == spec).collect()
    }

    /// The rows of one engine spec in the given measurement mode
    /// ([`MODE_CLOSED`] or [`MODE_OPEN`]).
    #[must_use]
    pub fn rows_for_mode(&self, spec: &str, mode: &str) -> Vec<&BenchRow> {
        self.rows
            .iter()
            .filter(|r| r.spec == spec && r.mode == mode)
            .collect()
    }

    /// Renders a compact aligned summary table (one line per row).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "# bench-report {} (seed {}, {:.1} s wall)\n\
             {:<44} {:<6} {:<12} {:>5} {:>12} {:>14} {:>8} {:>9} {:>9}\n",
            self.name,
            self.seed,
            self.wall_secs,
            "spec",
            "mode",
            "dist",
            "batch",
            "offered_tps",
            "throughput_tps",
            "abort%",
            "p99_us",
            "p999_us",
        );
        for row in &self.rows {
            out.push_str(&format!(
                "{:<44} {:<6} {:<12} {:>5} {:>12.0} {:>14.1} {:>8.2} {:>9} {:>9}\n",
                row.spec,
                row.mode,
                row.dist,
                row.batch,
                row.offered_tps,
                row.throughput_tps,
                row.abort_rate * 100.0,
                row.p99_us,
                row.p999_us,
            ));
        }
        out
    }
}

/// Options of a [`bench_report`] run.
#[derive(Debug, Clone)]
pub struct ReportOptions {
    /// How big a grid to run (duration per cell, client counts).
    pub scale: Scale,
    /// Batch sizes to sweep (1 = op-by-op). Sorted and deduplicated before
    /// the grid runs, so duplicates neither re-run cells nor skew the
    /// [`check_bench_report`] cell count.
    pub batches: Vec<usize>,
    /// Key distributions to sweep.
    pub dists: Vec<KeyDist>,
    /// Number of client threads per run.
    pub clients: usize,
    /// Base seed shared by every run (CI passes `--seed` for reproducible
    /// reruns).
    pub seed: u64,
}

impl Default for ReportOptions {
    fn default() -> Self {
        ReportOptions {
            scale: Scale::Smoke,
            batches: vec![1, 8],
            dists: vec![KeyDist::Uniform, KeyDist::Zipf { theta: 0.99 }],
            clients: 4,
            seed: 42,
        }
    }
}

impl ReportOptions {
    fn duration(&self) -> Duration {
        match self.scale {
            Scale::Smoke => Duration::from_millis(80),
            Scale::Quick => Duration::from_millis(250),
            Scale::Paper => Duration::from_millis(1_000),
        }
    }

    /// The batch sizes actually swept: sorted and deduplicated, so a
    /// repeated entry in `batches` neither runs a cell twice nor makes
    /// [`check_bench_report`]'s expected cell count disagree with the grid
    /// the runner produced.
    fn normalized_batches(&self) -> Vec<usize> {
        let mut batches = self.batches.clone();
        batches.sort_unstable();
        batches.dedup();
        batches
    }
}

/// Runs the full engine grid — every `mvtl_registry::all_specs()` engine ×
/// every distribution × every batch size in `options` — and returns the
/// machine-readable report.
///
/// # Panics
///
/// Panics when a registry spec fails to build: a report over a broken spec
/// should abort the caller (CI) rather than silently drop the engine from
/// the artifact.
#[must_use]
pub fn bench_report(name: &str, options: &ReportOptions) -> BenchReport {
    let started = Instant::now();
    let batches = options.normalized_batches();
    let mut rows = Vec::new();
    for dist in &options.dists {
        for &batch in &batches {
            for spec in mvtl_registry::all_specs() {
                let engine = mvtl_registry::build(spec)
                    .unwrap_or_else(|e| panic!("bench-report spec {spec:?} must build: {e}"));
                let metrics = run_closed_loop(
                    engine.as_ref(),
                    &RunnerOptions {
                        clients: options.clients,
                        duration: options.duration(),
                        spec: WorkloadSpec::new(8, 0.25, 512)
                            .with_dist(*dist)
                            .with_batch(batch),
                        seed: options.seed,
                    },
                    |v| v,
                );
                let attempts = metrics.committed + metrics.aborted;
                rows.push(BenchRow {
                    spec: spec.to_string(),
                    engine: EngineSpec::base_name(spec).to_string(),
                    mode: MODE_CLOSED.to_string(),
                    arrivals: "-".to_string(),
                    dist: dist.label(),
                    batch,
                    clients: options.clients,
                    offered_tps: 0.0,
                    committed: metrics.committed,
                    aborted: metrics.aborted,
                    shed: 0,
                    elapsed_secs: metrics.elapsed_secs,
                    throughput_tps: metrics.throughput_tps(),
                    abort_rate: if attempts == 0 {
                        0.0
                    } else {
                        metrics.aborted as f64 / attempts as f64
                    },
                    p50_us: 0,
                    p99_us: 0,
                    p999_us: 0,
                    locks: metrics.stats_end.lock_entries,
                    versions: metrics.stats_end.versions,
                    purged_versions: metrics.stats_end.purged_versions,
                    keys: metrics.stats_end.keys,
                });
            }
        }
    }
    BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        name: name.to_string(),
        seed: options.seed,
        wall_secs: started.elapsed().as_secs_f64(),
        rows,
    }
}

/// Checks a grid report for the invariants the CI smoke step relies on:
/// every registered engine appears for every requested (dist, batch) cell
/// and every row committed transactions. Only [`MODE_CLOSED`] rows are
/// counted, so a report that `serve_bench` has merged open-loop rows into
/// still validates against the closed-loop grid it started from.
///
/// # Panics
///
/// Panics with a description of the first violated invariant.
pub fn check_bench_report(report: &BenchReport, options: &ReportOptions) {
    let cells = options.dists.len() * options.normalized_batches().len();
    for spec in mvtl_registry::all_specs() {
        let rows = report.rows_for_mode(spec, MODE_CLOSED);
        assert_eq!(
            rows.len(),
            cells,
            "engine {spec:?}: expected one closed-loop row per (dist, batch) cell"
        );
        for row in rows {
            assert!(
                row.committed > 0 && row.throughput_tps > 0.0,
                "engine {spec:?} stopped committing (dist {}, batch {})",
                row.dist,
                row.batch
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_options() -> ReportOptions {
        ReportOptions {
            scale: Scale::Smoke,
            batches: vec![1, 4],
            dists: vec![KeyDist::Uniform],
            clients: 2,
            seed: 7,
        }
    }

    #[test]
    fn report_round_trips_through_json_exactly() {
        let report = BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            name: "unit".to_string(),
            seed: 99,
            wall_secs: 1.0 / 3.0,
            rows: vec![BenchRow {
                spec: "sharded?shards=8&inner=mvtil-early".to_string(),
                engine: "sharded".to_string(),
                mode: MODE_OPEN.to_string(),
                arrivals: "bursty(16)".to_string(),
                dist: "zipf(0.99)".to_string(),
                batch: 8,
                clients: 4,
                offered_tps: 12_000.5,
                committed: 12_345,
                aborted: 67,
                shed: 3,
                elapsed_secs: 0.081_234_567_89,
                throughput_tps: 152_407.407_407,
                abort_rate: 0.005_396,
                p50_us: 180,
                p99_us: 950,
                p999_us: 2_100,
                locks: 321,
                versions: 654,
                purged_versions: 9,
                keys: 512,
            }],
        };
        let rendered = report.to_json_string();
        let parsed = BenchReport::from_json_str(&rendered).unwrap();
        assert_eq!(parsed, report);
        // Serializing the parse again is byte-identical (stable field order).
        assert_eq!(parsed.to_json_string(), rendered);
    }

    #[test]
    fn from_json_rejects_bad_documents() {
        assert!(BenchReport::from_json_str("not json").is_err());
        assert!(BenchReport::from_json_str("{}").is_err());
        let err = BenchReport::from_json_str(
            r#"{"schema_version": 999, "name": "x", "seed": 1, "wall_secs": 0, "rows": []}"#,
        )
        .unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
        // Version-1 documents (pre serve-path) are explicitly unsupported.
        let err = BenchReport::from_json_str(
            r#"{"schema_version": 1, "name": "x", "seed": 1, "wall_secs": 0, "rows": []}"#,
        )
        .unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
        let err = BenchReport::from_json_str(
            r#"{"schema_version": 2, "name": "x", "seed": 1, "wall_secs": 0, "rows": [{}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("spec"), "{err}");
    }

    #[test]
    fn dedupe_keeps_the_newest_row_per_cell_and_preserves_order() {
        let mut template = BenchRow {
            spec: "mvtil-early".to_string(),
            engine: "mvtil-early".to_string(),
            mode: MODE_CLOSED.to_string(),
            arrivals: "-".to_string(),
            dist: "uniform".to_string(),
            batch: 1,
            clients: 2,
            offered_tps: 0.0,
            committed: 1,
            aborted: 0,
            shed: 0,
            elapsed_secs: 0.1,
            throughput_tps: 10.0,
            abort_rate: 0.0,
            p50_us: 0,
            p99_us: 0,
            p999_us: 0,
            locks: 0,
            versions: 0,
            purged_versions: 0,
            keys: 0,
        };
        let stale = template.clone();
        template.throughput_tps = 99.0; // the rerun of the same cell
        let fresh = template.clone();
        let mut other = template.clone();
        other.batch = 8; // a different cell: must survive untouched
        let mut open = template.clone();
        open.mode = MODE_OPEN.to_string();
        open.offered_tps = 1_000.0;

        let mut report = BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            name: "unit".to_string(),
            seed: 1,
            wall_secs: 0.0,
            rows: vec![stale, other.clone(), open.clone(), fresh.clone()],
        };
        report.dedupe_rows();
        assert_eq!(report.rows, vec![other, open, fresh], "stale cell replaced");
        let before = report.rows.clone();
        report.dedupe_rows();
        assert_eq!(report.rows, before, "dedupe is idempotent");
    }

    #[test]
    fn duplicate_batch_entries_run_once_and_still_pass_the_check() {
        let options = ReportOptions {
            batches: vec![4, 1, 4],
            dists: vec![KeyDist::Uniform],
            clients: 1,
            ..tiny_options()
        };
        let report = bench_report("unit-dup", &options);
        check_bench_report(&report, &options);
        let specs = mvtl_registry::all_specs().len();
        assert_eq!(report.rows.len(), 2 * specs, "each batch size ran once");
    }

    #[test]
    fn smoke_grid_covers_every_engine_and_round_trips() {
        let options = tiny_options();
        let report = bench_report("unit-smoke", &options);
        check_bench_report(&report, &options);
        let parsed = BenchReport::from_json_str(&report.to_json_string()).unwrap();
        assert_eq!(parsed, report);
        assert!(report.render().contains("bench-report unit-smoke"));
    }
}
