//! The machine-readable benchmark report: the `BENCH_<name>.json` artifact.
//!
//! [`bench_report`] runs the registry-driven engine grid — every
//! `mvtl_registry::all_specs()` engine, under uniform and zipf(0.99) key
//! skew, batched and unbatched — through the threaded closed-loop runner and
//! collects one [`BenchRow`] per cell: throughput, abort rate, state-size
//! statistics and wall time. The whole [`BenchReport`] serializes to a
//! **versioned** JSON document through the `serde_json` shim
//! ([`BenchReport::to_json_string`] / [`BenchReport::from_json_str`] are
//! exact inverses), which is what CI uploads as `BENCH_smoke.json` and what
//! future changes diff their numbers against.
//!
//! The JSON schema (version 3):
//!
//! ```json
//! {
//!   "schema_version": 3,
//!   "name": "smoke",
//!   "seed": 42,
//!   "wall_secs": 12.5,
//!   "rows": [
//!     {
//!       "spec": "sharded?shards=8&inner=mvtil-early",
//!       "engine": "sharded",
//!       "mode": "open",
//!       "arrivals": "poisson",
//!       "dist": "zipf(0.99)",
//!       "batch": 8,
//!       "clients": 4,
//!       "offered_tps": 12000.0,
//!       "committed": 1234,
//!       "aborted": 56,
//!       "shed": 0,
//!       "elapsed_secs": 0.08,
//!       "throughput_tps": 15425.0,
//!       "round_spread": 0.93,
//!       "abort_rate": 0.043,
//!       "p50_us": 180,
//!       "p99_us": 950,
//!       "p999_us": 2100,
//!       "locks": 321,
//!       "versions": 654,
//!       "purged_versions": 0,
//!       "keys": 512
//!     }
//!   ]
//! }
//! ```
//!
//! Version 2 added the serve-path columns: `mode` distinguishes in-process
//! closed-loop rows (`"closed"`) from open-loop rows measured over TCP by the
//! `mvtl-server` driver (`"open"`); `arrivals`, `offered_tps` and `shed`
//! describe the open-loop schedule, and `p50_us`/`p99_us`/`p999_us` carry the
//! client-observed latency quantiles.
//!
//! Version 3 reinterprets the quantile columns on closed rows: the closed-loop
//! runner now records per-attempt latency (begin through commit or abort)
//! through the same histogram the open-loop driver uses, so `p50_us` /
//! `p99_us` / `p999_us` are populated on **every** row. A row that committed
//! transactions but reports all-zero quantiles is rejected at parse time —
//! that shape only arises from the pre-v3 bug where closed rows measured no
//! latency at all. Version 3 also adds `round_spread`: closed cells run
//! best-of-N rounds, `throughput_tps` is the best round, and `round_spread`
//! is the slowest round as a fraction of it — the volatility the baseline
//! gate widens its tolerance by (see [`BaselineDelta::required_ratio`]).

use crate::runner::{run_closed_loop, RunnerOptions};
use crate::spec::{KeyDist, WorkloadSpec};
use crate::Scale;
use mvtl_registry::EngineSpec;
use serde_json::Value;
use std::time::{Duration, Instant};

/// Version of the `BENCH_*.json` schema written by [`BenchReport`]. Bump it
/// when a field is renamed, removed or reinterpreted; adding fields is
/// backward compatible.
pub const BENCH_SCHEMA_VERSION: u32 = 3;

/// Measurement mode of a closed-loop row: in-process, throughput-oriented.
pub const MODE_CLOSED: &str = "closed";
/// Measurement mode of an open-loop row: over TCP at a fixed offered load,
/// latency-oriented (produced by the `mvtl-server` driver via `serve_bench`).
pub const MODE_OPEN: &str = "open";

/// One grid cell: a single run of one engine spec under one key distribution
/// and batch size — either an in-process closed-loop run ([`MODE_CLOSED`]) or
/// an open-loop run over the TCP serve-path ([`MODE_OPEN`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// The full engine spec the run was built from.
    pub spec: String,
    /// The engine's base name (what `Engine::name` reports).
    pub engine: String,
    /// Measurement mode: [`MODE_CLOSED`] or [`MODE_OPEN`].
    pub mode: String,
    /// Arrival-process label of an open-loop row ("poisson", "bursty(16)");
    /// `"-"` on closed rows, which have no external arrival schedule.
    pub arrivals: String,
    /// Key-distribution label ("uniform", "zipf(0.99)", ...).
    pub dist: String,
    /// Batch size the runner used (1 = op-by-op).
    pub batch: usize,
    /// Number of client threads (closed) or connections (open).
    pub clients: usize,
    /// Offered load of an open-loop row in transactions per second; 0 on
    /// closed rows (a closed loop offers as much as the system absorbs).
    pub offered_tps: f64,
    /// Committed transactions.
    pub committed: u64,
    /// Aborted transaction attempts.
    pub aborted: u64,
    /// Open-loop arrivals shed because the bounded in-flight queue was full;
    /// 0 on closed rows.
    pub shed: u64,
    /// Measured wall-clock duration of the run in seconds.
    pub elapsed_secs: f64,
    /// Commits per second (of the best round — closed cells run best-of-N,
    /// see [`run_grid_cell`]).
    pub throughput_tps: f64,
    /// Slowest-to-fastest round throughput ratio of the cell's best-of-N
    /// measurement, in `0.0..=1.0`; `1.0` means a single round or perfectly
    /// repeatable rounds. The baseline gate reads this off the *blessed*
    /// artifact to widen its tolerance on cells whose own bless run could
    /// not reproduce its best number: a cell is held to within
    /// [`BASELINE_ALLOWED_DROP`] of its slowest blessed round, not its
    /// luckiest. Open-loop rows are single measurements and record `1.0`.
    pub round_spread: f64,
    /// Fraction of attempts that aborted.
    pub abort_rate: f64,
    /// Median per-attempt latency in microseconds: arrival-to-completion on
    /// open rows, begin-to-resolution on closed rows.
    pub p50_us: u64,
    /// 99th-percentile client-observed latency in microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile client-observed latency in microseconds.
    pub p999_us: u64,
    /// Lock entries resident at the end of the run.
    pub locks: usize,
    /// Stored versions resident at the end of the run.
    pub versions: usize,
    /// Versions purged (by GC or commit-time cleanup) during the run.
    pub purged_versions: usize,
    /// Keys owning engine state at the end of the run.
    pub keys: usize,
}

impl BenchRow {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("spec".to_string(), Value::from(self.spec.clone())),
            ("engine".to_string(), Value::from(self.engine.clone())),
            ("mode".to_string(), Value::from(self.mode.clone())),
            ("arrivals".to_string(), Value::from(self.arrivals.clone())),
            ("dist".to_string(), Value::from(self.dist.clone())),
            ("batch".to_string(), Value::from(self.batch)),
            ("clients".to_string(), Value::from(self.clients)),
            ("offered_tps".to_string(), Value::from(self.offered_tps)),
            ("committed".to_string(), Value::from(self.committed)),
            ("aborted".to_string(), Value::from(self.aborted)),
            ("shed".to_string(), Value::from(self.shed)),
            ("elapsed_secs".to_string(), Value::from(self.elapsed_secs)),
            (
                "throughput_tps".to_string(),
                Value::from(self.throughput_tps),
            ),
            ("round_spread".to_string(), Value::from(self.round_spread)),
            ("abort_rate".to_string(), Value::from(self.abort_rate)),
            ("p50_us".to_string(), Value::from(self.p50_us)),
            ("p99_us".to_string(), Value::from(self.p99_us)),
            ("p999_us".to_string(), Value::from(self.p999_us)),
            ("locks".to_string(), Value::from(self.locks)),
            ("versions".to_string(), Value::from(self.versions)),
            (
                "purged_versions".to_string(),
                Value::from(self.purged_versions),
            ),
            ("keys".to_string(), Value::from(self.keys)),
        ])
    }

    fn from_json(value: &Value) -> Result<BenchRow, String> {
        let row = BenchRow {
            spec: req_str(value, "spec")?,
            engine: req_str(value, "engine")?,
            mode: req_str(value, "mode")?,
            arrivals: req_str(value, "arrivals")?,
            dist: req_str(value, "dist")?,
            batch: req_u64(value, "batch")? as usize,
            clients: req_u64(value, "clients")? as usize,
            offered_tps: req_f64(value, "offered_tps")?,
            committed: req_u64(value, "committed")?,
            aborted: req_u64(value, "aborted")?,
            shed: req_u64(value, "shed")?,
            elapsed_secs: req_f64(value, "elapsed_secs")?,
            throughput_tps: req_f64(value, "throughput_tps")?,
            round_spread: req_f64(value, "round_spread")?,
            abort_rate: req_f64(value, "abort_rate")?,
            p50_us: req_u64(value, "p50_us")?,
            p99_us: req_u64(value, "p99_us")?,
            p999_us: req_u64(value, "p999_us")?,
            locks: req_u64(value, "locks")? as usize,
            versions: req_u64(value, "versions")? as usize,
            purged_versions: req_u64(value, "purged_versions")? as usize,
            keys: req_u64(value, "keys")? as usize,
        };
        // Schema-v3 invariant: a row that committed work measured latency.
        // All-zero quantiles on a nonempty row are the pre-v3 closed-loop bug
        // (no latency recorded at all), not a legitimate measurement.
        if !(0.0..=1.0).contains(&row.round_spread) {
            return Err(format!(
                "row {:?} ({}, {}, batch {}) has round_spread {} outside 0..=1",
                row.spec, row.mode, row.dist, row.batch, row.round_spread
            ));
        }
        if row.committed > 0 && row.p50_us == 0 && row.p99_us == 0 && row.p999_us == 0 {
            return Err(format!(
                "row {:?} ({}, {}, batch {}) committed {} transactions but reports \
                 all-zero latency quantiles",
                row.spec, row.mode, row.dist, row.batch, row.committed
            ));
        }
        Ok(row)
    }
}

/// A whole benchmark run: the versioned artifact CI uploads as
/// `BENCH_<name>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version of the document ([`BENCH_SCHEMA_VERSION`] on write).
    pub schema_version: u32,
    /// Report name; the artifact file is `BENCH_<name>.json`.
    pub name: String,
    /// Base seed every run derived its RNG streams from.
    pub seed: u64,
    /// Total wall-clock time spent producing the report, in seconds.
    pub wall_secs: f64,
    /// One row per grid cell.
    pub rows: Vec<BenchRow>,
}

fn req<'v>(value: &'v Value, field: &str) -> Result<&'v Value, String> {
    value.get(field).ok_or_else(|| format!("missing {field:?}"))
}

fn req_str(value: &Value, field: &str) -> Result<String, String> {
    req(value, field)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{field:?} is not a string"))
}

fn req_u64(value: &Value, field: &str) -> Result<u64, String> {
    req(value, field)?
        .as_u64()
        .ok_or_else(|| format!("{field:?} is not a non-negative integer"))
}

fn req_f64(value: &Value, field: &str) -> Result<f64, String> {
    req(value, field)?
        .as_f64()
        .ok_or_else(|| format!("{field:?} is not a number"))
}

impl BenchReport {
    /// The report as a `serde_json` value tree.
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            (
                "schema_version".to_string(),
                Value::from(self.schema_version),
            ),
            ("name".to_string(), Value::from(self.name.clone())),
            ("seed".to_string(), Value::from(self.seed)),
            ("wall_secs".to_string(), Value::from(self.wall_secs)),
            (
                "rows".to_string(),
                Value::Array(self.rows.iter().map(BenchRow::to_json).collect()),
            ),
        ])
    }

    /// Serializes the report as pretty-printed JSON — the exact bytes of the
    /// `BENCH_<name>.json` artifact.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let mut out = serde_json::to_string_pretty(&self.to_json());
        out.push('\n');
        out
    }

    /// Parses a report back from its JSON serialization.
    /// [`BenchReport::to_json_string`] and this function are exact inverses
    /// (floats included), which the CI smoke step asserts on every run.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem: JSON syntax errors,
    /// missing or mistyped fields, or an unsupported `schema_version`.
    pub fn from_json_str(input: &str) -> Result<BenchReport, String> {
        let value = serde_json::from_str(input).map_err(|e| e.to_string())?;
        let schema_version = req_u64(&value, "schema_version")? as u32;
        if schema_version != BENCH_SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {schema_version} (this build reads \
                 {BENCH_SCHEMA_VERSION})"
            ));
        }
        let rows = req(&value, "rows")?
            .as_array()
            .ok_or_else(|| "\"rows\" is not an array".to_string())?
            .iter()
            .map(BenchRow::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchReport {
            schema_version,
            name: req_str(&value, "name")?,
            seed: req_u64(&value, "seed")?,
            wall_secs: req_f64(&value, "wall_secs")?,
            rows,
        })
    }

    /// Drops duplicate grid cells, keeping the **newest** (last) row for
    /// each `(spec, engine, mode, arrivals, dist, batch, clients,
    /// offered_tps)` cell and preserving row order otherwise. Both report
    /// binaries call this before writing `BENCH_<name>.json`, so repeated
    /// local runs that merge into an existing artifact replace their cells
    /// instead of accumulating copies.
    pub fn dedupe_rows(&mut self) {
        let mut seen = std::collections::HashSet::new();
        let mut kept: Vec<BenchRow> = self
            .rows
            .drain(..)
            .rev()
            .filter(|row| {
                seen.insert((
                    row.spec.clone(),
                    row.engine.clone(),
                    row.mode.clone(),
                    row.arrivals.clone(),
                    row.dist.clone(),
                    row.batch,
                    row.clients,
                    // f64 is not Hash; offered loads are computed, not
                    // accumulated, so bit-identity is the right equality.
                    row.offered_tps.to_bits(),
                ))
            })
            .collect();
        kept.reverse();
        self.rows = kept;
    }

    /// The rows of one engine spec, in grid order.
    #[must_use]
    pub fn rows_for(&self, spec: &str) -> Vec<&BenchRow> {
        self.rows.iter().filter(|r| r.spec == spec).collect()
    }

    /// The rows of one engine spec in the given measurement mode
    /// ([`MODE_CLOSED`] or [`MODE_OPEN`]).
    #[must_use]
    pub fn rows_for_mode(&self, spec: &str, mode: &str) -> Vec<&BenchRow> {
        self.rows
            .iter()
            .filter(|r| r.spec == spec && r.mode == mode)
            .collect()
    }

    /// Renders a compact aligned summary table (one line per row).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "# bench-report {} (seed {}, {:.1} s wall)\n\
             {:<44} {:<6} {:<12} {:>5} {:>12} {:>14} {:>8} {:>9} {:>9}\n",
            self.name,
            self.seed,
            self.wall_secs,
            "spec",
            "mode",
            "dist",
            "batch",
            "offered_tps",
            "throughput_tps",
            "abort%",
            "p99_us",
            "p999_us",
        );
        for row in &self.rows {
            out.push_str(&format!(
                "{:<44} {:<6} {:<12} {:>5} {:>12.0} {:>14.1} {:>8.2} {:>9} {:>9}\n",
                row.spec,
                row.mode,
                row.dist,
                row.batch,
                row.offered_tps,
                row.throughput_tps,
                row.abort_rate * 100.0,
                row.p99_us,
                row.p999_us,
            ));
        }
        out
    }
}

/// Options of a [`bench_report`] run.
#[derive(Debug, Clone)]
pub struct ReportOptions {
    /// How big a grid to run (duration per cell, client counts).
    pub scale: Scale,
    /// Batch sizes to sweep (1 = op-by-op). Sorted and deduplicated before
    /// the grid runs, so duplicates neither re-run cells nor skew the
    /// [`check_bench_report`] cell count.
    pub batches: Vec<usize>,
    /// Key distributions to sweep.
    pub dists: Vec<KeyDist>,
    /// Number of client threads per run.
    pub clients: usize,
    /// Base seed shared by every run (CI passes `--seed` for reproducible
    /// reruns).
    pub seed: u64,
}

impl Default for ReportOptions {
    fn default() -> Self {
        ReportOptions {
            scale: Scale::Smoke,
            batches: vec![1, 8],
            dists: vec![KeyDist::Uniform, KeyDist::Zipf { theta: 0.99 }],
            clients: 4,
            seed: 42,
        }
    }
}

impl ReportOptions {
    fn duration(&self) -> Duration {
        match self.scale {
            Scale::Smoke => Duration::from_millis(80),
            Scale::Quick => Duration::from_millis(250),
            Scale::Paper => Duration::from_millis(1_000),
        }
    }

    /// Rounds per grid cell; the row keeps the best round by throughput.
    ///
    /// Closed-loop capacity noise is one-sided — a busy runner, a timeout
    /// pile-up in the lock-wait engines (2PL, pessimistic MVTL) or a GC-less
    /// version-chain buildup only ever *lower* a round — so best-of-N is the
    /// stable capacity estimate. The lock-wait engines are the binding case:
    /// one 100ms wait timeout wipes out most of an 80ms round, making single
    /// rounds bimodal and far outside the baseline gate's 20% tolerance;
    /// with six rounds both the blessed baseline and the CI run concentrate
    /// on the timeout-free mode. `Paper` cells are long enough to be stable
    /// on their own.
    fn rounds(&self) -> u64 {
        match self.scale {
            Scale::Smoke | Scale::Quick => 6,
            Scale::Paper => 1,
        }
    }

    /// The batch sizes actually swept: sorted and deduplicated, so a
    /// repeated entry in `batches` neither runs a cell twice nor makes
    /// [`check_bench_report`]'s expected cell count disagree with the grid
    /// the runner produced.
    fn normalized_batches(&self) -> Vec<usize> {
        let mut batches = self.batches.clone();
        batches.sort_unstable();
        batches.dedup();
        batches
    }
}

/// Runs the full engine grid — every `mvtl_registry::all_specs()` engine ×
/// every distribution × every batch size in `options` — and returns the
/// machine-readable report.
///
/// # Panics
///
/// Panics when a registry spec fails to build: a report over a broken spec
/// should abort the caller (CI) rather than silently drop the engine from
/// the artifact.
#[must_use]
pub fn bench_report(name: &str, options: &ReportOptions) -> BenchReport {
    let started = Instant::now();
    let batches = options.normalized_batches();
    let mut rows = Vec::new();
    for dist in &options.dists {
        for &batch in &batches {
            for spec in mvtl_registry::all_specs() {
                rows.push(run_grid_cell(spec, *dist, batch, options));
            }
        }
    }
    BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        name: name.to_string(),
        seed: options.seed,
        wall_secs: started.elapsed().as_secs_f64(),
        rows,
    }
}

/// Runs one closed-loop grid cell and returns its row.
///
/// Best-of-N ([`ReportOptions`] rounds): every round gets a fresh engine —
/// version-chain state must not carry over between rounds — and a derived
/// seed; the fastest round is the cell's capacity estimate. The baseline
/// gate calls this again for cells that appear regressed (see
/// [`confirm_regressions`]).
///
/// # Panics
///
/// Panics when `spec` fails to build, like [`bench_report`].
#[must_use]
pub fn run_grid_cell(spec: &str, dist: KeyDist, batch: usize, options: &ReportOptions) -> BenchRow {
    let measured: Vec<_> = (0..options.rounds())
        .map(|round| {
            let engine = mvtl_registry::build(spec)
                .unwrap_or_else(|e| panic!("bench-report spec {spec:?} must build: {e}"));
            run_closed_loop(
                engine.as_ref(),
                &RunnerOptions {
                    clients: options.clients,
                    duration: options.duration(),
                    spec: WorkloadSpec::new(8, 0.25, 512)
                        .with_dist(dist)
                        .with_batch(batch),
                    seed: options.seed ^ (round << 32),
                },
                |v| v,
            )
        })
        .collect();
    let slowest_tps = measured
        .iter()
        .map(|m| m.throughput_tps())
        .fold(f64::INFINITY, f64::min);
    let metrics = measured
        .into_iter()
        .max_by(|a, b| {
            a.throughput_tps()
                .partial_cmp(&b.throughput_tps())
                .expect("throughput is never NaN")
        })
        .expect("at least one round per cell");
    // How repeatable the rounds were: the baseline gate widens its tolerance
    // by this factor so a volatile cell is not held to its luckiest round.
    let round_spread = if metrics.throughput_tps() > 0.0 {
        (slowest_tps / metrics.throughput_tps()).clamp(0.0, 1.0)
    } else {
        1.0
    };
    let attempts = metrics.committed + metrics.aborted;
    BenchRow {
        spec: spec.to_string(),
        engine: EngineSpec::base_name(spec).to_string(),
        mode: MODE_CLOSED.to_string(),
        arrivals: "-".to_string(),
        dist: dist.label(),
        batch,
        clients: options.clients,
        offered_tps: 0.0,
        committed: metrics.committed,
        aborted: metrics.aborted,
        shed: 0,
        elapsed_secs: metrics.elapsed_secs,
        throughput_tps: metrics.throughput_tps(),
        round_spread,
        abort_rate: if attempts == 0 {
            0.0
        } else {
            metrics.aborted as f64 / attempts as f64
        },
        p50_us: metrics.latency.p50(),
        p99_us: metrics.latency.p99(),
        p999_us: metrics.latency.p999(),
        locks: metrics.stats_end.lock_entries,
        versions: metrics.stats_end.versions,
        purged_versions: metrics.stats_end.purged_versions,
        keys: metrics.stats_end.keys,
    }
}

/// Checks a grid report for the invariants the CI smoke step relies on:
/// every registered engine appears for every requested (dist, batch) cell
/// and every row committed transactions. Only [`MODE_CLOSED`] rows are
/// counted, so a report that `serve_bench` has merged open-loop rows into
/// still validates against the closed-loop grid it started from.
///
/// # Panics
///
/// Panics with a description of the first violated invariant.
pub fn check_bench_report(report: &BenchReport, options: &ReportOptions) {
    let cells = options.dists.len() * options.normalized_batches().len();
    for spec in mvtl_registry::all_specs() {
        let rows = report.rows_for_mode(spec, MODE_CLOSED);
        assert_eq!(
            rows.len(),
            cells,
            "engine {spec:?}: expected one closed-loop row per (dist, batch) cell"
        );
        for row in rows {
            assert!(
                row.committed > 0 && row.throughput_tps > 0.0,
                "engine {spec:?} stopped committing (dist {}, batch {})",
                row.dist,
                row.batch
            );
            assert!(
                row.p50_us > 0 || row.p99_us > 0 || row.p999_us > 0,
                "engine {spec:?} committed work but measured no latency \
                 (dist {}, batch {})",
                row.dist,
                row.batch
            );
        }
    }
}

/// Fraction of closed-loop throughput a cell may lose against the blessed
/// baseline before [`compare_to_baseline`] flags it: the CI perf gate fails
/// on a >20% drop. Wide enough to absorb shared-runner noise at smoke scale,
/// tight enough that a structural regression (an accidental allocation on the
/// hot path, a lock split gone wrong) cannot hide.
pub const BASELINE_ALLOWED_DROP: f64 = 0.20;

/// One matched cell of a baseline comparison: the same `(spec, engine, mode,
/// dist, batch, clients)` grid cell in both reports.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineDelta {
    /// The full engine spec of the cell.
    pub spec: String,
    /// Key-distribution label.
    pub dist: String,
    /// Batch size of the cell.
    pub batch: usize,
    /// Client threads of the cell.
    pub clients: usize,
    /// Closed-loop throughput of the blessed baseline (its best round).
    pub baseline_tps: f64,
    /// [`BenchRow::round_spread`] of the blessed baseline cell: how much of
    /// its best number the bless run itself could reproduce on its slowest
    /// round.
    pub baseline_spread: f64,
    /// Closed-loop throughput of the current run.
    pub current_tps: f64,
}

impl BaselineDelta {
    /// `current / baseline` — above 1.0 is a speedup.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.baseline_tps <= 0.0 {
            1.0
        } else {
            self.current_tps / self.baseline_tps
        }
    }

    /// The ratio this cell must keep to pass the gate:
    /// `(1 - allowed_drop) * baseline_spread`.
    ///
    /// A cell is held to within `allowed_drop` of what its own bless run
    /// could *reproducibly* achieve — its slowest blessed round — rather
    /// than its luckiest. For a stable cell (`spread ≈ 1`) that is the plain
    /// 20% rule; for a timeout-quantized lock-wait cell whose bless rounds
    /// legitimately swing 2×, the floor widens by exactly the volatility the
    /// baseline itself demonstrated, so the gate cannot flap on noise the
    /// blessed artifact already documents.
    #[must_use]
    pub fn required_ratio(&self, allowed_drop: f64) -> f64 {
        (1.0 - allowed_drop) * self.baseline_spread.clamp(0.0, 1.0)
    }

    /// Whether this cell fell below [`BaselineDelta::required_ratio`].
    #[must_use]
    pub fn regressed(&self, allowed_drop: f64) -> bool {
        self.ratio() < self.required_ratio(allowed_drop)
    }
}

/// Result of [`compare_to_baseline`]: every matched closed-loop cell plus the
/// cells only one side has (a changed grid is reported, never silently
/// ignored).
#[derive(Debug, Clone)]
pub struct BaselineComparison {
    /// One entry per cell present in both reports, in current-report order.
    pub deltas: Vec<BaselineDelta>,
    /// Baseline closed-loop cells with no counterpart in the current run
    /// (e.g. an engine was removed from the registry).
    pub baseline_only: Vec<String>,
    /// Current closed-loop cells with no counterpart in the baseline
    /// (e.g. a new engine; informational, never a failure).
    pub current_only: Vec<String>,
}

impl BaselineComparison {
    /// The matched cells that lost more than `allowed_drop` throughput.
    #[must_use]
    pub fn regressions(&self, allowed_drop: f64) -> Vec<&BaselineDelta> {
        self.deltas
            .iter()
            .filter(|d| d.regressed(allowed_drop))
            .collect()
    }

    /// Renders the per-cell delta table the CI gate prints: one line per
    /// matched cell with both throughputs and the ratio, regressions marked.
    #[must_use]
    pub fn render(&self, allowed_drop: f64) -> String {
        let mut out = format!(
            "# baseline comparison ({} matched cells, {:.0}% allowed drop below \
             the slowest blessed round)\n\
             {:<44} {:<12} {:>5} {:>12} {:>12} {:>7} {:>7}\n",
            self.deltas.len(),
            allowed_drop * 100.0,
            "spec",
            "dist",
            "batch",
            "baseline_tps",
            "current_tps",
            "ratio",
            "floor",
        );
        for delta in &self.deltas {
            out.push_str(&format!(
                "{:<44} {:<12} {:>5} {:>12.0} {:>12.0} {:>6.2}x {:>6.2}x{}\n",
                delta.spec,
                delta.dist,
                delta.batch,
                delta.baseline_tps,
                delta.current_tps,
                delta.ratio(),
                delta.required_ratio(allowed_drop),
                if delta.regressed(allowed_drop) {
                    "  REGRESSED"
                } else {
                    ""
                },
            ));
        }
        for cell in &self.baseline_only {
            out.push_str(&format!(
                "# baseline-only cell (not measured now): {cell}\n"
            ));
        }
        for cell in &self.current_only {
            out.push_str(&format!("# new cell (no baseline): {cell}\n"));
        }
        out
    }
}

fn cell_key(row: &BenchRow) -> (String, String, String, String, usize, usize) {
    (
        row.spec.clone(),
        row.engine.clone(),
        row.mode.clone(),
        row.dist.clone(),
        row.batch,
        row.clients,
    )
}

fn cell_label(row: &BenchRow) -> String {
    format!(
        "{} ({}, batch {}, {} clients)",
        row.spec, row.dist, row.batch, row.clients
    )
}

/// Matches the closed-loop cells of `current` against `baseline` by
/// `(spec, engine, mode, dist, batch, clients)` and reports per-cell
/// throughput deltas. Open-loop rows are ignored: their throughput is the
/// offered load, not a measurement.
#[must_use]
pub fn compare_to_baseline(current: &BenchReport, baseline: &BenchReport) -> BaselineComparison {
    let mut base_cells: Vec<(_, &BenchRow)> = baseline
        .rows
        .iter()
        .filter(|r| r.mode == MODE_CLOSED)
        .map(|r| (cell_key(r), r))
        .collect();
    let mut deltas = Vec::new();
    let mut current_only = Vec::new();
    for row in current.rows.iter().filter(|r| r.mode == MODE_CLOSED) {
        let key = cell_key(row);
        match base_cells.iter().position(|(k, _)| *k == key) {
            Some(at) => {
                let (_, base) = base_cells.swap_remove(at);
                deltas.push(BaselineDelta {
                    spec: row.spec.clone(),
                    dist: row.dist.clone(),
                    batch: row.batch,
                    clients: row.clients,
                    baseline_tps: base.throughput_tps,
                    baseline_spread: base.round_spread,
                    current_tps: row.throughput_tps,
                });
            }
            None => current_only.push(cell_label(row)),
        }
    }
    BaselineComparison {
        deltas,
        baseline_only: base_cells.iter().map(|(_, r)| cell_label(r)).collect(),
        current_only,
    }
}

/// Re-measures apparently regressed cells until the regression either clears
/// or survives `retries` confirmation passes, and returns the final
/// comparison. `current` keeps the best number measured for every retried
/// cell.
///
/// This is the gate's noise filter. Closed-loop capacity noise is one-sided:
/// interference, a lock-wait timeout eating most of a smoke-length round, or
/// version-chain buildup can only push a measurement *below* the cell's true
/// capacity, never above it. So a drop that disappears on re-measurement was
/// noise, while a structural regression reproduces on every pass. Each pass
/// re-runs only the still-regressed cells through `remeasure` (which must
/// return a row for the same `(spec, engine, mode, dist, batch, clients)`
/// cell) and keeps the faster row.
///
/// # Panics
///
/// Panics when `remeasure` returns a row for a different grid cell than the
/// one it was asked about — that is a wiring bug in the caller, and silently
/// merging the row would corrupt the artifact.
pub fn confirm_regressions(
    current: &mut BenchReport,
    baseline: &BenchReport,
    allowed_drop: f64,
    retries: usize,
    mut remeasure: impl FnMut(&BenchRow) -> BenchRow,
) -> BaselineComparison {
    for _ in 0..retries {
        let flagged: Vec<usize> = compare_to_baseline(current, baseline)
            .regressions(allowed_drop)
            .iter()
            .filter_map(|delta| {
                current.rows.iter().position(|row| {
                    row.mode == MODE_CLOSED
                        && row.spec == delta.spec
                        && row.dist == delta.dist
                        && row.batch == delta.batch
                        && row.clients == delta.clients
                })
            })
            .collect();
        if flagged.is_empty() {
            break;
        }
        for at in flagged {
            let again = remeasure(&current.rows[at]);
            assert_eq!(
                cell_key(&again),
                cell_key(&current.rows[at]),
                "remeasure returned a row for a different grid cell"
            );
            if again.throughput_tps > current.rows[at].throughput_tps {
                current.rows[at] = again;
            }
        }
    }
    compare_to_baseline(current, baseline)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_options() -> ReportOptions {
        ReportOptions {
            scale: Scale::Smoke,
            batches: vec![1, 4],
            dists: vec![KeyDist::Uniform],
            clients: 2,
            seed: 7,
        }
    }

    #[test]
    fn report_round_trips_through_json_exactly() {
        let report = BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            name: "unit".to_string(),
            seed: 99,
            wall_secs: 1.0 / 3.0,
            rows: vec![BenchRow {
                spec: "sharded?shards=8&inner=mvtil-early".to_string(),
                engine: "sharded".to_string(),
                mode: MODE_OPEN.to_string(),
                arrivals: "bursty(16)".to_string(),
                dist: "zipf(0.99)".to_string(),
                batch: 8,
                clients: 4,
                offered_tps: 12_000.5,
                committed: 12_345,
                aborted: 67,
                shed: 3,
                elapsed_secs: 0.081_234_567_89,
                throughput_tps: 152_407.407_407,
                round_spread: 0.875,
                abort_rate: 0.005_396,
                p50_us: 180,
                p99_us: 950,
                p999_us: 2_100,
                locks: 321,
                versions: 654,
                purged_versions: 9,
                keys: 512,
            }],
        };
        let rendered = report.to_json_string();
        let parsed = BenchReport::from_json_str(&rendered).unwrap();
        assert_eq!(parsed, report);
        // Serializing the parse again is byte-identical (stable field order).
        assert_eq!(parsed.to_json_string(), rendered);
    }

    #[test]
    fn from_json_rejects_bad_documents() {
        assert!(BenchReport::from_json_str("not json").is_err());
        assert!(BenchReport::from_json_str("{}").is_err());
        let err = BenchReport::from_json_str(
            r#"{"schema_version": 999, "name": "x", "seed": 1, "wall_secs": 0, "rows": []}"#,
        )
        .unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
        // Older documents (v1 pre serve-path, v2 pre closed-loop latency) are
        // explicitly unsupported.
        for version in [1, 2] {
            let err = BenchReport::from_json_str(&format!(
                r#"{{"schema_version": {version}, "name": "x", "seed": 1, "wall_secs": 0, "rows": []}}"#,
            ))
            .unwrap_err();
            assert!(err.contains("schema_version"), "{err}");
        }
        let err = BenchReport::from_json_str(
            r#"{"schema_version": 3, "name": "x", "seed": 1, "wall_secs": 0, "rows": [{}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("spec"), "{err}");
    }

    #[test]
    fn from_json_rejects_all_zero_quantiles_on_nonempty_rows() {
        let row = BenchRow {
            spec: "mvtil-early".to_string(),
            engine: "mvtil-early".to_string(),
            mode: MODE_CLOSED.to_string(),
            arrivals: "-".to_string(),
            dist: "uniform".to_string(),
            batch: 1,
            clients: 2,
            offered_tps: 0.0,
            committed: 100,
            aborted: 0,
            shed: 0,
            elapsed_secs: 0.1,
            throughput_tps: 1_000.0,
            round_spread: 1.0,
            abort_rate: 0.0,
            p50_us: 0,
            p99_us: 0,
            p999_us: 0,
            locks: 0,
            versions: 1,
            purged_versions: 0,
            keys: 1,
        };
        let report = BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            name: "unit".to_string(),
            seed: 1,
            wall_secs: 0.0,
            rows: vec![row.clone()],
        };
        let err = BenchReport::from_json_str(&report.to_json_string()).unwrap_err();
        assert!(err.contains("all-zero latency quantiles"), "{err}");
        // An idle row (nothing committed) may legitimately report zeros.
        let mut idle = report.clone();
        idle.rows[0].committed = 0;
        idle.rows[0].throughput_tps = 0.0;
        assert!(BenchReport::from_json_str(&idle.to_json_string()).is_ok());
        // And a nonempty row with any measured quantile parses.
        let mut measured = report;
        measured.rows[0].p999_us = 40;
        assert!(BenchReport::from_json_str(&measured.to_json_string()).is_ok());
    }

    #[test]
    fn dedupe_keeps_the_newest_row_per_cell_and_preserves_order() {
        let mut template = BenchRow {
            spec: "mvtil-early".to_string(),
            engine: "mvtil-early".to_string(),
            mode: MODE_CLOSED.to_string(),
            arrivals: "-".to_string(),
            dist: "uniform".to_string(),
            batch: 1,
            clients: 2,
            offered_tps: 0.0,
            committed: 1,
            aborted: 0,
            shed: 0,
            elapsed_secs: 0.1,
            throughput_tps: 10.0,
            round_spread: 1.0,
            abort_rate: 0.0,
            p50_us: 0,
            p99_us: 0,
            p999_us: 0,
            locks: 0,
            versions: 0,
            purged_versions: 0,
            keys: 0,
        };
        let stale = template.clone();
        template.throughput_tps = 99.0; // the rerun of the same cell
        let fresh = template.clone();
        let mut other = template.clone();
        other.batch = 8; // a different cell: must survive untouched
        let mut open = template.clone();
        open.mode = MODE_OPEN.to_string();
        open.offered_tps = 1_000.0;

        let mut report = BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            name: "unit".to_string(),
            seed: 1,
            wall_secs: 0.0,
            rows: vec![stale, other.clone(), open.clone(), fresh.clone()],
        };
        report.dedupe_rows();
        assert_eq!(report.rows, vec![other, open, fresh], "stale cell replaced");
        let before = report.rows.clone();
        report.dedupe_rows();
        assert_eq!(report.rows, before, "dedupe is idempotent");
    }

    #[test]
    fn duplicate_batch_entries_run_once_and_still_pass_the_check() {
        let options = ReportOptions {
            batches: vec![4, 1, 4],
            dists: vec![KeyDist::Uniform],
            clients: 1,
            ..tiny_options()
        };
        let report = bench_report("unit-dup", &options);
        check_bench_report(&report, &options);
        let specs = mvtl_registry::all_specs().len();
        assert_eq!(report.rows.len(), 2 * specs, "each batch size ran once");
    }

    fn cell(spec: &str, dist: &str, batch: usize, tps: f64) -> BenchRow {
        BenchRow {
            spec: spec.to_string(),
            engine: EngineSpec::base_name(spec).to_string(),
            mode: MODE_CLOSED.to_string(),
            arrivals: "-".to_string(),
            dist: dist.to_string(),
            batch,
            clients: 4,
            offered_tps: 0.0,
            committed: (tps * 0.08) as u64,
            aborted: 0,
            shed: 0,
            elapsed_secs: 0.08,
            throughput_tps: tps,
            round_spread: 1.0,
            abort_rate: 0.0,
            p50_us: 20,
            p99_us: 90,
            p999_us: 400,
            locks: 0,
            versions: 1,
            purged_versions: 0,
            keys: 1,
        }
    }

    fn wrap(rows: Vec<BenchRow>) -> BenchReport {
        BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            name: "unit".to_string(),
            seed: 1,
            wall_secs: 0.0,
            rows,
        }
    }

    #[test]
    fn baseline_comparison_matches_cells_and_flags_regressions() {
        let baseline = wrap(vec![
            cell("mvtil-early", "uniform", 1, 40_000.0),
            cell("mvtil-early", "zipf(0.99)", 1, 30_000.0),
            cell("mvtl-to", "uniform", 1, 25_000.0),
            cell("removed-engine", "uniform", 1, 10_000.0),
        ]);
        let current = wrap(vec![
            cell("mvtil-early", "uniform", 1, 52_000.0), // 1.3x: fine
            cell("mvtil-early", "zipf(0.99)", 1, 23_000.0), // 0.77x: regressed
            cell("mvtl-to", "uniform", 1, 20_500.0),     // 0.82x: within 20%
            cell("new-engine", "uniform", 1, 5_000.0),
        ]);
        let cmp = compare_to_baseline(&current, &baseline);
        assert_eq!(cmp.deltas.len(), 3);
        let bad = cmp.regressions(BASELINE_ALLOWED_DROP);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].spec, "mvtil-early");
        assert_eq!(bad[0].dist, "zipf(0.99)");
        assert!(bad[0].regressed(BASELINE_ALLOWED_DROP));
        assert!((bad[0].ratio() - 23.0 / 30.0).abs() < 1e-9);
        // Grid drift is reported, not silently dropped.
        assert_eq!(cmp.baseline_only.len(), 1);
        assert!(cmp.baseline_only[0].contains("removed-engine"));
        assert_eq!(cmp.current_only.len(), 1);
        assert!(cmp.current_only[0].contains("new-engine"));
        let table = cmp.render(BASELINE_ALLOWED_DROP);
        assert!(table.contains("REGRESSED"), "{table}");
        assert!(table.contains("removed-engine"), "{table}");
        assert!(table.contains("new-engine"), "{table}");
    }

    #[test]
    fn baseline_comparison_ignores_open_rows_and_other_dimensions() {
        let mut open = cell("mvtil-early", "uniform", 1, 9_999.0);
        open.mode = MODE_OPEN.to_string();
        open.arrivals = "poisson".to_string();
        let baseline = wrap(vec![
            cell("mvtil-early", "uniform", 1, 40_000.0),
            open.clone(),
        ]);
        // Same spec but a different batch / client count is a different cell.
        let mut other_clients = cell("mvtil-early", "uniform", 1, 1_000.0);
        other_clients.clients = 8;
        let current = wrap(vec![
            cell("mvtil-early", "uniform", 2, 100.0),
            other_clients,
            open,
        ]);
        let cmp = compare_to_baseline(&current, &baseline);
        assert!(cmp.deltas.is_empty(), "no cell matches across dimensions");
        assert_eq!(cmp.baseline_only.len(), 1);
        assert_eq!(cmp.current_only.len(), 2);
        // An empty match set has no regressions to flag.
        assert!(cmp.regressions(BASELINE_ALLOWED_DROP).is_empty());
    }

    #[test]
    fn volatile_baseline_cells_widen_the_gate_floor() {
        let mut volatile = cell("2pl", "zipf(0.99)", 8, 40_000.0);
        volatile.round_spread = 0.5; // the bless run itself swung 2x
        let baseline = wrap(vec![
            volatile,
            cell("mvtil-early", "uniform", 1, 40_000.0), // spread 1.0
        ]);
        // Both cells sit at 0.55x of their baseline: fatal for the stable
        // cell, within the widened floor (0.8 * 0.5 = 0.4) for the volatile
        // one.
        let current = wrap(vec![
            cell("2pl", "zipf(0.99)", 8, 22_000.0),
            cell("mvtil-early", "uniform", 1, 22_000.0),
        ]);
        let cmp = compare_to_baseline(&current, &baseline);
        let bad = cmp.regressions(BASELINE_ALLOWED_DROP);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].spec, "mvtil-early");
        assert!((bad[0].required_ratio(BASELINE_ALLOWED_DROP) - 0.8).abs() < 1e-9);
        // A drop below even the widened floor still fails the volatile cell.
        let too_slow = wrap(vec![cell("2pl", "zipf(0.99)", 8, 15_000.0)]); // 0.375x
        let cmp = compare_to_baseline(&too_slow, &baseline);
        assert_eq!(cmp.regressions(BASELINE_ALLOWED_DROP).len(), 1);
        assert_eq!(cmp.regressions(BASELINE_ALLOWED_DROP)[0].spec, "2pl");
    }

    #[test]
    fn from_json_rejects_out_of_range_round_spread() {
        let mut report = wrap(vec![cell("mvtil-early", "uniform", 1, 1_000.0)]);
        report.rows[0].round_spread = 1.5;
        let err = BenchReport::from_json_str(&report.to_json_string()).unwrap_err();
        assert!(err.contains("round_spread"), "{err}");
    }

    #[test]
    fn confirm_regressions_clears_noise_and_keeps_the_better_row() {
        let baseline = wrap(vec![
            cell("mvtil-early", "uniform", 1, 100_000.0),
            cell("2pl", "uniform", 1, 50_000.0),
        ]);
        // 2pl looks regressed (0.6x); mvtil-early is fine and must never be
        // re-measured.
        let mut current = wrap(vec![
            cell("mvtil-early", "uniform", 1, 98_000.0),
            cell("2pl", "uniform", 1, 30_000.0),
        ]);
        let mut calls = Vec::new();
        let cmp = confirm_regressions(&mut current, &baseline, 0.20, 3, |row| {
            calls.push(row.spec.clone());
            // The retry lands in the fast mode: the regression was noise.
            cell(&row.spec, &row.dist, row.batch, 49_000.0)
        });
        assert_eq!(calls, vec!["2pl"], "only the flagged cell re-ran, once");
        assert!(cmp.regressions(0.20).is_empty());
        assert!(
            (current.rows[1].throughput_tps - 49_000.0).abs() < 1e-9,
            "the artifact keeps the confirmed number"
        );
    }

    #[test]
    fn confirm_regressions_keeps_failing_when_the_drop_reproduces() {
        let baseline = wrap(vec![cell("mvtl-to", "uniform", 1, 50_000.0)]);
        let mut current = wrap(vec![cell("mvtl-to", "uniform", 1, 30_000.0)]);
        let mut calls = 0;
        let cmp = confirm_regressions(&mut current, &baseline, 0.20, 3, |row| {
            calls += 1;
            // Every retry reproduces the drop — and a *slower* retry must
            // not overwrite the best measurement so far.
            cell(&row.spec, &row.dist, row.batch, 25_000.0)
        });
        assert_eq!(calls, 3, "a real regression is confirmed on every pass");
        assert_eq!(cmp.regressions(0.20).len(), 1);
        assert!(
            (current.rows[0].throughput_tps - 30_000.0).abs() < 1e-9,
            "best-so-far row survives slower retries"
        );
    }

    #[test]
    fn confirm_regressions_without_regressions_never_remeasures() {
        let baseline = wrap(vec![cell("mvtil-early", "uniform", 1, 40_000.0)]);
        let mut current = wrap(vec![cell("mvtil-early", "uniform", 1, 41_000.0)]);
        let cmp = confirm_regressions(&mut current, &baseline, 0.20, 3, |row| {
            panic!("no cell regressed, nothing to re-measure: {}", row.spec)
        });
        assert!(cmp.regressions(0.20).is_empty());
    }

    #[test]
    fn baseline_delta_ratio_handles_zero_baselines() {
        let delta = BaselineDelta {
            spec: "x".to_string(),
            dist: "uniform".to_string(),
            batch: 1,
            clients: 1,
            baseline_tps: 0.0,
            baseline_spread: 1.0,
            current_tps: 100.0,
        };
        assert!((delta.ratio() - 1.0).abs() < f64::EPSILON);
        assert!(!delta.regressed(BASELINE_ALLOWED_DROP));
    }

    #[test]
    fn smoke_grid_covers_every_engine_and_round_trips() {
        let options = tiny_options();
        let report = bench_report("unit-smoke", &options);
        check_bench_report(&report, &options);
        let parsed = BenchReport::from_json_str(&report.to_json_string()).unwrap();
        assert_eq!(parsed, report);
        assert!(report.render().contains("bench-report unit-smoke"));
    }
}
