//! # mvtl-workload
//!
//! Workload generation, closed-loop runners and the figure harness that
//! regenerates the paper's evaluation (§8).
//!
//! Three layers:
//!
//! * [`spec`] — statistical workload descriptions (§8.3 parameters: operations
//!   per transaction, write fraction, key-space size) and a generator that
//!   turns them into transaction bodies.
//! * [`runner`] — a multi-threaded closed-loop runner that drives any
//!   `dyn` [`Engine`](mvtl_common::Engine) (the centralized MVTL policies and
//!   the baselines, usually built from a `mvtl-registry` string spec) and
//!   reports throughput / commit rate. This is the harness used by the
//!   Criterion micro-benchmarks.
//! * [`figures`] — one function per figure of the paper (Figures 1–7) plus the
//!   ablations called out in `DESIGN.md`, built on the distributed simulator
//!   ([`mvtl_sim`]), and [`figures::engine_grid`], the registry-driven sweep
//!   over every centralized engine. Each returns structured rows and can
//!   render the same table the corresponding binary in `mvtl-bench` prints.
//! * [`soak`] — the GC soak: the same sustained workload run GC-off and
//!   GC-on against a real engine, asserting the §6 claim that the garbage
//!   collector keeps versions + lock entries bounded ([`soak::gc_soak`]).
//! * [`report`] — the machine-readable benchmark report: the registry grid
//!   (uniform + zipf, batched + unbatched) serialized to a versioned
//!   `BENCH_<name>.json` artifact ([`report::bench_report`]), which CI
//!   uploads and future changes diff against.
//!
//! Every figure function takes a [`figures::Scale`]: `Quick` keeps runs small
//! enough for CI and benchmarks, `Paper` uses parameter ranges matching the
//! paper's plots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod report;
pub mod runner;
pub mod soak;
pub mod spec;

pub use figures::{FigureRow, FigureTable, Scale};
pub use report::{
    bench_report, check_bench_report, compare_to_baseline, confirm_regressions, run_grid_cell,
    BaselineComparison, BaselineDelta, BenchReport, BenchRow, ReportOptions, BASELINE_ALLOWED_DROP,
    BENCH_SCHEMA_VERSION, MODE_CLOSED, MODE_OPEN,
};
pub use runner::{execute_template, run_closed_loop, RunnerMetrics, RunnerOptions};
pub use soak::{gc_soak, SoakOptions, SoakReport};
pub use spec::{KeyDist, KeySampler, TxTemplate, WorkloadSpec};
