//! A multi-threaded closed-loop runner for the centralized engines.
//!
//! The paper's clients "submit transactions repeatedly in a closed-loop"
//! (§8.3); this runner does the same against any `dyn`
//! [`Engine`] — every engine in the workspace, usually obtained from the
//! `mvtl-registry` string-spec factory — with one thread per client. It is the
//! harness behind the Criterion micro-benchmarks and the in-process examples
//! (the distributed experiments use `mvtl-sim` instead).

use crate::spec::WorkloadSpec;
use mvtl_common::{Engine, EngineExt, ProcessId, StoreStats, TxError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Options of a closed-loop run.
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// Number of client threads.
    pub clients: usize,
    /// Wall-clock duration of the measured run.
    pub duration: Duration,
    /// Workload parameters.
    pub spec: WorkloadSpec,
    /// Base seed; each client derives its own stream from it.
    pub seed: u64,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        RunnerOptions {
            clients: 4,
            duration: Duration::from_millis(200),
            spec: WorkloadSpec::default(),
            seed: 42,
        }
    }
}

/// Results of a closed-loop run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunnerMetrics {
    /// Committed transactions.
    pub committed: u64,
    /// Aborted transaction attempts.
    pub aborted: u64,
    /// Measured wall-clock duration in seconds.
    pub elapsed_secs: f64,
    /// Engine state-size statistics sampled before the run started.
    pub stats_start: StoreStats,
    /// Engine state-size statistics sampled after the run finished — the
    /// Figure-6 "state as time passes" endpoint: with GC attached this stays
    /// bounded; without it, it grows with every committed write.
    pub stats_end: StoreStats,
}

impl RunnerMetrics {
    /// Commits per second.
    #[must_use]
    pub fn throughput_tps(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            0.0
        } else {
            self.committed as f64 / self.elapsed_secs
        }
    }

    /// Fraction of attempts that committed.
    #[must_use]
    pub fn commit_rate(&self) -> f64 {
        let attempts = self.committed + self.aborted;
        if attempts == 0 {
            0.0
        } else {
            self.committed as f64 / attempts as f64
        }
    }
}

/// Runs `options.clients` threads against `engine`, each executing randomly
/// generated read/write transactions in a closed loop for the configured
/// duration, and returns the aggregate metrics.
///
/// The engine is consumed through the object-safe [`Engine`] layer, so one
/// monomorphization serves every protocol; failed attempts abort via the RAII
/// [`Transaction`](mvtl_common::Transaction) guard.
pub fn run_closed_loop<V>(
    engine: &dyn Engine<V>,
    options: &RunnerOptions,
    make_value: impl Fn(u64) -> V + Sync,
) -> RunnerMetrics {
    let committed = AtomicU64::new(0);
    let aborted = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let stats_start = engine.stats();
    let start = Instant::now();

    std::thread::scope(|scope| {
        for client in 0..options.clients {
            let committed = &committed;
            let aborted = &aborted;
            let stop = &stop;
            let spec = options.spec;
            let seed = options.seed;
            let make_value = &make_value;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ ((client as u64 + 1) * 0x9E37_79B9));
                let process = ProcessId(client as u32 + 1);
                // Built once per thread: the Zipf sampler's setup math must
                // not run per key draw.
                let sampler = spec.key_sampler();
                let mut counter = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let template = spec.generate_with(&sampler, &mut rng);
                    let mut txn = engine.begin(process);
                    let result = (|| -> Result<(), TxError> {
                        for (key, write) in &template.ops {
                            if *write {
                                counter += 1;
                                txn.write(*key, make_value(counter))?;
                            } else {
                                txn.read(*key)?;
                            }
                        }
                        Ok(())
                    })();
                    match result {
                        Ok(()) => match txn.commit() {
                            Ok(_) => {
                                committed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                aborted.fetch_add(1, Ordering::Relaxed);
                            }
                        },
                        Err(_) => {
                            // Dropping the guard aborts the attempt (RAII).
                            drop(txn);
                            aborted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        // Timer thread: flip the stop flag when the duration elapses.
        let stop = &stop;
        let duration = options.duration;
        scope.spawn(move || {
            std::thread::sleep(duration);
            stop.store(true, Ordering::Relaxed);
        });
    });

    RunnerMetrics {
        committed: committed.into_inner(),
        aborted: aborted.into_inner(),
        elapsed_secs: start.elapsed().as_secs_f64(),
        stats_start,
        stats_end: engine.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn options() -> RunnerOptions {
        RunnerOptions {
            clients: 4,
            duration: Duration::from_millis(120),
            spec: WorkloadSpec::new(8, 0.3, 256),
            seed: 9,
        }
    }

    #[test]
    fn runs_against_an_mvtl_engine() {
        let engine = mvtl_registry::build("mvtil-early").expect("registry spec");
        let metrics = run_closed_loop(engine.as_ref(), &options(), |v| v);
        assert!(metrics.committed > 0);
        assert!(metrics.throughput_tps() > 0.0);
        assert!(metrics.commit_rate() > 0.5);
        // State-size sampling: nothing before the run, committed writes after.
        assert_eq!(metrics.stats_start, StoreStats::default());
        assert!(metrics.stats_end.versions > 0);
        assert!(metrics.stats_end.resident() >= metrics.stats_end.versions);
    }

    #[test]
    fn runs_against_the_baselines() {
        for spec in ["mvto+", "2pl?timeout_ms=5"] {
            let engine = mvtl_registry::build(spec).expect("registry spec");
            let metrics = run_closed_loop(engine.as_ref(), &options(), |v| v);
            assert!(metrics.committed > 0, "{spec}");
        }
    }

    #[test]
    fn metrics_arithmetic() {
        let m = RunnerMetrics {
            committed: 50,
            aborted: 50,
            elapsed_secs: 2.0,
            ..RunnerMetrics::default()
        };
        assert!((m.throughput_tps() - 25.0).abs() < f64::EPSILON);
        assert!((m.commit_rate() - 0.5).abs() < f64::EPSILON);
        assert_eq!(RunnerMetrics::default().commit_rate(), 0.0);
    }
}
