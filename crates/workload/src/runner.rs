//! A multi-threaded closed-loop runner for the centralized engines.
//!
//! The paper's clients "submit transactions repeatedly in a closed-loop"
//! (§8.3); this runner does the same against any `dyn`
//! [`Engine`] — every engine in the workspace, usually obtained from the
//! `mvtl-registry` string-spec factory — with one thread per client. It is the
//! harness behind the Criterion micro-benchmarks and the in-process examples
//! (the distributed experiments use `mvtl-sim` instead).

use crate::spec::{TxTemplate, WorkloadSpec};
use mvtl_common::hist::LatencyHistogram;
use mvtl_common::{Engine, EngineExt, Key, ProcessId, StoreStats, Transaction, TxError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Executes one generated transaction body against an open transaction.
///
/// With `batch <= 1` this is the classic op-by-op loop. With a larger batch,
/// maximal runs of consecutive same-kind operations (up to `batch` operations
/// each) are issued through the engine's batched `read_many` / `write_many`
/// surface. The template's operation order is preserved — a run boundary
/// falls exactly where the operation kind flips — so the observable semantics
/// match the op-by-op execution of the same template on the same engine;
/// what changes is the per-key overhead the engine pays.
///
/// # Errors
///
/// Returns the engine's abort error as soon as one operation fails; the
/// transaction should then be dropped (RAII abort) by the caller.
pub fn execute_template<V>(
    tx: &mut Transaction<'_, V>,
    template: &TxTemplate,
    batch: usize,
    mut next_value: impl FnMut() -> V,
) -> Result<(), TxError> {
    if batch <= 1 {
        for (key, write) in &template.ops {
            if *write {
                tx.write(*key, next_value())?;
            } else {
                tx.read(*key)?;
            }
        }
        return Ok(());
    }
    let ops = &template.ops;
    let mut start = 0;
    while start < ops.len() {
        let write = ops[start].1;
        let mut end = start + 1;
        while end < ops.len() && ops[end].1 == write && end - start < batch {
            end += 1;
        }
        if write {
            let entries: Vec<(Key, V)> = ops[start..end]
                .iter()
                .map(|(key, _)| (*key, next_value()))
                .collect();
            tx.write_many(entries)?;
        } else {
            let keys: Vec<Key> = ops[start..end].iter().map(|(key, _)| *key).collect();
            tx.read_many(&keys)?;
        }
        start = end;
    }
    Ok(())
}

/// Options of a closed-loop run.
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// Number of client threads.
    pub clients: usize,
    /// Wall-clock duration of the measured run.
    pub duration: Duration,
    /// Workload parameters.
    pub spec: WorkloadSpec,
    /// Base seed; each client derives its own stream from it.
    pub seed: u64,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        RunnerOptions {
            clients: 4,
            duration: Duration::from_millis(200),
            spec: WorkloadSpec::default(),
            seed: 42,
        }
    }
}

/// Results of a closed-loop run.
#[derive(Debug, Clone, Default)]
pub struct RunnerMetrics {
    /// Committed transactions.
    pub committed: u64,
    /// Aborted transaction attempts.
    pub aborted: u64,
    /// Measured wall-clock duration in seconds.
    pub elapsed_secs: f64,
    /// Engine state-size statistics sampled before the run started.
    pub stats_start: StoreStats,
    /// Engine state-size statistics sampled after the run finished — the
    /// Figure-6 "state as time passes" endpoint: with GC attached this stays
    /// bounded; without it, it grows with every committed write.
    pub stats_end: StoreStats,
    /// Per-attempt latency (begin through commit or abort, microseconds),
    /// merged across all client threads — the same measurement the open-loop
    /// driver makes, minus queueing (a closed loop has no arrival schedule).
    pub latency: LatencyHistogram,
}

impl RunnerMetrics {
    /// Commits per second.
    #[must_use]
    pub fn throughput_tps(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            0.0
        } else {
            self.committed as f64 / self.elapsed_secs
        }
    }

    /// Fraction of attempts that committed.
    #[must_use]
    pub fn commit_rate(&self) -> f64 {
        let attempts = self.committed + self.aborted;
        if attempts == 0 {
            0.0
        } else {
            self.committed as f64 / attempts as f64
        }
    }
}

/// Runs `options.clients` threads against `engine`, each executing randomly
/// generated read/write transactions in a closed loop for the configured
/// duration, and returns the aggregate metrics.
///
/// The engine is consumed through the object-safe [`Engine`] layer, so one
/// monomorphization serves every protocol; failed attempts abort via the RAII
/// [`Transaction`] guard.
pub fn run_closed_loop<V>(
    engine: &dyn Engine<V>,
    options: &RunnerOptions,
    make_value: impl Fn(u64) -> V + Sync,
) -> RunnerMetrics {
    let committed = AtomicU64::new(0);
    let aborted = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let stats_start = engine.stats();
    let start = Instant::now();
    let mut latency = LatencyHistogram::new();

    std::thread::scope(|scope| {
        let mut clients = Vec::with_capacity(options.clients);
        for client in 0..options.clients {
            let committed = &committed;
            let aborted = &aborted;
            let stop = &stop;
            let spec = options.spec;
            let seed = options.seed;
            let make_value = &make_value;
            clients.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ ((client as u64 + 1) * 0x9E37_79B9));
                let process = ProcessId(client as u32 + 1);
                // Built once per thread: the Zipf sampler's setup math must
                // not run per key draw.
                let sampler = spec.key_sampler();
                let mut counter = 0u64;
                let mut hist = LatencyHistogram::new();
                while !stop.load(Ordering::Relaxed) {
                    let template = spec.generate_with(&sampler, &mut rng);
                    let attempt = Instant::now();
                    let mut txn = engine.begin(process);
                    let result = execute_template(&mut txn, &template, spec.batch, || {
                        counter += 1;
                        make_value(counter)
                    });
                    match result {
                        Ok(()) => match txn.commit() {
                            Ok(_) => {
                                committed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                aborted.fetch_add(1, Ordering::Relaxed);
                            }
                        },
                        Err(_) => {
                            // Dropping the guard aborts the attempt (RAII).
                            drop(txn);
                            aborted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    let micros = u64::try_from(attempt.elapsed().as_micros()).unwrap_or(u64::MAX);
                    hist.record(micros);
                }
                hist
            }));
        }
        // Timer thread: flip the stop flag when the duration elapses.
        let stop = &stop;
        let duration = options.duration;
        scope.spawn(move || {
            std::thread::sleep(duration);
            stop.store(true, Ordering::Relaxed);
        });
        for handle in clients {
            // Re-raise client panics instead of silently dropping their tails.
            let hist = handle
                .join()
                .unwrap_or_else(|panic| std::panic::resume_unwind(panic));
            latency.merge(&hist);
        }
    });

    RunnerMetrics {
        committed: committed.into_inner(),
        aborted: aborted.into_inner(),
        elapsed_secs: start.elapsed().as_secs_f64(),
        stats_start,
        stats_end: engine.stats(),
        latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn options() -> RunnerOptions {
        RunnerOptions {
            clients: 4,
            duration: Duration::from_millis(120),
            spec: WorkloadSpec::new(8, 0.3, 256),
            seed: 9,
        }
    }

    #[test]
    fn runs_against_an_mvtl_engine() {
        let engine = mvtl_registry::build("mvtil-early").expect("registry spec");
        let metrics = run_closed_loop(engine.as_ref(), &options(), |v| v);
        assert!(metrics.committed > 0);
        assert!(metrics.throughput_tps() > 0.0);
        assert!(metrics.commit_rate() > 0.5);
        // State-size sampling: nothing before the run, committed writes after.
        assert_eq!(metrics.stats_start, StoreStats::default());
        assert!(metrics.stats_end.versions > 0);
        assert!(metrics.stats_end.resident() >= metrics.stats_end.versions);
        // Every attempt recorded a latency, and the quantiles are ordered.
        assert_eq!(metrics.latency.count(), metrics.committed + metrics.aborted);
        assert!(
            metrics.latency.max() > 0,
            "some attempt took measurable time"
        );
        assert!(metrics.latency.p50() <= metrics.latency.p99());
        assert!(metrics.latency.p99() <= metrics.latency.p999());
    }

    #[test]
    fn batched_runner_commits_on_the_batched_path() {
        let engine = mvtl_registry::build("mvtil-early").expect("registry spec");
        let mut opts = options();
        opts.spec = opts.spec.with_batch(8);
        let metrics = run_closed_loop(engine.as_ref(), &opts, |v| v);
        assert!(metrics.committed > 0);
        assert!(metrics.commit_rate() > 0.5);
    }

    #[test]
    fn execute_template_splits_runs_at_kind_flips_and_batch_bounds() {
        use mvtl_common::Key;
        let engine = mvtl_registry::build("mvtl-to").expect("registry spec");
        let template = TxTemplate {
            ops: vec![
                (Key(1), true),
                (Key(2), true),
                (Key(3), true),
                (Key(1), false),
                (Key(4), false),
                (Key(1), true),
            ],
        };
        let mut values = 0u64;
        let mut tx = EngineExt::begin(engine.as_ref(), ProcessId(1));
        execute_template(&mut tx, &template, 2, || {
            values += 1;
            values * 10
        })
        .unwrap();
        let info = tx.commit().unwrap();
        // 4 write values were drawn (3 + the trailing one); the write-key
        // set deduplicates the re-written Key(1).
        assert_eq!(values, 4);
        assert_eq!(info.writes.len(), 3);
        // The final value of Key(1) is the trailing write, as op-by-op.
        let mut tx = EngineExt::begin(engine.as_ref(), ProcessId(2));
        assert_eq!(tx.read(Key(1)).unwrap(), Some(40));
        assert_eq!(tx.read(Key(2)).unwrap(), Some(20));
        assert_eq!(tx.read(Key(3)).unwrap(), Some(30));
        tx.commit().unwrap();
    }

    #[test]
    fn runs_against_the_baselines() {
        for spec in ["mvto+", "2pl?timeout_ms=5"] {
            let engine = mvtl_registry::build(spec).expect("registry spec");
            let metrics = run_closed_loop(engine.as_ref(), &options(), |v| v);
            assert!(metrics.committed > 0, "{spec}");
        }
    }

    #[test]
    fn metrics_arithmetic() {
        let m = RunnerMetrics {
            committed: 50,
            aborted: 50,
            elapsed_secs: 2.0,
            ..RunnerMetrics::default()
        };
        assert!((m.throughput_tps() - 25.0).abs() < f64::EPSILON);
        assert!((m.commit_rate() - 0.5).abs() < f64::EPSILON);
        assert_eq!(RunnerMetrics::default().commit_rate(), 0.0);
    }
}
