//! The GC soak harness: the real-engine analogue of the simulator's
//! Figure 6/7 experiment (`gc_bounds_state_size`).
//!
//! A soak runs the *same* closed-loop workload twice against the same
//! registry spec — once as written (no GC) and once with
//! `gc_ms`/`gc_lag_ms` appended, which attaches the `mvtl-gc` background
//! service — and compares the engines' final state sizes. Under sustained
//! write traffic the GC-off engine accumulates versions and lock entries
//! without bound, while the GC-on engine stays near the live working set;
//! [`SoakReport::gc_bounds_state`] is that inequality, and the `soak` binary
//! in `mvtl-bench` (run in CI) fails when it does not hold.

use crate::runner::{run_closed_loop, RunnerMetrics, RunnerOptions};
use crate::spec::WorkloadSpec;
use mvtl_registry::EngineSpec;
use std::time::Duration;

/// Options of a [`gc_soak`] run.
#[derive(Debug, Clone)]
pub struct SoakOptions {
    /// Number of client threads (the acceptance setup uses 4).
    pub clients: usize,
    /// Wall-clock duration of each of the two runs.
    pub duration: Duration,
    /// GC sweep interval appended to the spec for the GC-on run.
    pub gc_ms: u64,
    /// GC lag appended to the spec for the GC-on run.
    pub gc_lag_ms: u64,
    /// Workload shape shared by both runs.
    pub spec: WorkloadSpec,
    /// Base seed shared by both runs.
    pub seed: u64,
}

impl Default for SoakOptions {
    fn default() -> Self {
        SoakOptions {
            clients: 4,
            duration: Duration::from_millis(500),
            gc_ms: 10,
            gc_lag_ms: 5,
            spec: WorkloadSpec::new(8, 0.5, 512),
            seed: 42,
        }
    }
}

/// The outcome of one [`gc_soak`]: the same workload with and without GC.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// The engine spec of the GC-off run.
    pub base_spec: String,
    /// The engine spec of the GC-on run (base plus `gc_ms`/`gc_lag_ms`).
    pub gc_spec: String,
    /// Metrics of the GC-off run.
    pub gc_off: RunnerMetrics,
    /// Metrics of the GC-on run.
    pub gc_on: RunnerMetrics,
}

impl SoakReport {
    /// The Figure-6 claim for real engines: with GC attached, the resident
    /// state (stored versions + lock entries) at the end of the run is
    /// strictly below the GC-off run's.
    #[must_use]
    pub fn gc_bounds_state(&self) -> bool {
        self.gc_on.stats_end.resident() < self.gc_off.stats_end.resident()
    }

    /// Renders the comparison as an aligned two-row table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# gc-soak — {} ({} s/run)\n{:<44} {:>10} {:>12} {:>10} {:>10} {:>10} {:>8}\n",
            self.base_spec,
            self.gc_off.elapsed_secs,
            "spec",
            "committed",
            "commit_rate",
            "versions",
            "locks",
            "purged",
            "keys",
        ));
        for (spec, metrics) in [
            (&self.base_spec, &self.gc_off),
            (&self.gc_spec, &self.gc_on),
        ] {
            out.push_str(&format!(
                "{:<44} {:>10} {:>12.3} {:>10} {:>10} {:>10} {:>8}\n",
                spec,
                metrics.committed,
                metrics.commit_rate(),
                metrics.stats_end.versions,
                metrics.stats_end.lock_entries,
                metrics.stats_end.purged_versions,
                metrics.stats_end.keys,
            ));
        }
        out.push_str(&format!(
            "bounded: {} (GC-on resident {} vs GC-off resident {})\n",
            self.gc_bounds_state(),
            self.gc_on.stats_end.resident(),
            self.gc_off.stats_end.resident(),
        ));
        out
    }
}

/// Runs the sustained-load soak for `base_spec`: one GC-off run, one GC-on
/// run with the options' `gc_ms`/`gc_lag_ms` appended to the spec.
///
/// # Panics
///
/// Panics when either spec fails to build — a soak over a broken spec should
/// abort the caller (CI) rather than report an empty run.
#[must_use]
pub fn gc_soak(base_spec: &str, options: &SoakOptions) -> SoakReport {
    let gc_spec = EngineSpec::append_params(
        base_spec,
        &format!("gc_ms={}&gc_lag_ms={}", options.gc_ms, options.gc_lag_ms),
    );
    let runner_options = RunnerOptions {
        clients: options.clients,
        duration: options.duration,
        spec: options.spec,
        seed: options.seed,
    };
    let run = |spec: &str| {
        let engine =
            mvtl_registry::build(spec).unwrap_or_else(|e| panic!("soak spec {spec:?}: {e}"));
        run_closed_loop(engine.as_ref(), &runner_options, |v| v)
    };
    let gc_off = run(base_spec);
    let gc_on = run(&gc_spec);
    SoakReport {
        base_spec: base_spec.to_string(),
        gc_spec,
        gc_off,
        gc_on,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soak_report_renders_both_rows() {
        let report = gc_soak(
            "mvtil-early",
            &SoakOptions {
                duration: Duration::from_millis(120),
                ..SoakOptions::default()
            },
        );
        let rendered = report.render();
        assert!(rendered.contains("mvtil-early?gc_ms=10&gc_lag_ms=5"));
        assert!(rendered.contains("bounded:"));
        assert!(report.gc_off.committed > 0 && report.gc_on.committed > 0);
    }
}
