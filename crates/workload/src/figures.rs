//! The figure harness: one function per figure of §8.4, plus ablations.
//!
//! Each function builds the simulator configurations for the corresponding
//! experiment, runs them, and returns a [`FigureTable`] whose rows carry the
//! series the paper plots (throughput, commit rate, and for Figures 6–7 the
//! state-size / over-time series). The binaries in `mvtl-bench` print these
//! tables; `EXPERIMENTS.md` records representative output next to the paper's
//! reported shapes.

use crate::runner::{run_closed_loop, RunnerOptions};
use crate::spec::{KeyDist, WorkloadSpec};
use mvtl_sim::{Protocol, SimConfig, Simulation};
use std::time::Duration;

/// How big an experiment to run.
///
/// * `Smoke` — seconds-long runs for tests and Criterion benchmarks;
/// * `Quick` — the default for the `fig*` binaries: small but large enough for
///   the qualitative shape (who wins, where curves bend) to be visible;
/// * `Paper` — parameter ranges matching the paper's plots (minutes of virtual
///   time; still fast in wall-clock terms because the simulator is virtual-time
///   based, but much more work than `Quick`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny runs for CI and benchmarks.
    Smoke,
    /// Reduced sweeps for interactive use (default of the binaries).
    Quick,
    /// Paper-scale parameter sweeps.
    Paper,
}

impl Scale {
    fn duration_secs(self) -> u64 {
        match self {
            Scale::Smoke => 1,
            Scale::Quick => 3,
            Scale::Paper => 20,
        }
    }

    fn scale_clients(self, paper_clients: &[usize]) -> Vec<usize> {
        match self {
            Scale::Paper => paper_clients.to_vec(),
            Scale::Quick => paper_clients.iter().map(|c| (c / 5).max(4)).collect(),
            Scale::Smoke => vec![8, 16],
        }
    }

    fn scale_keys(self, paper_keys: u64) -> u64 {
        match self {
            Scale::Paper => paper_keys,
            Scale::Quick => (paper_keys / 5).max(500),
            Scale::Smoke => (paper_keys / 20).max(200),
        }
    }
}

/// One data point of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureRow {
    /// Name of the x-axis parameter ("clients", "write %", "servers", "time s").
    pub x_label: &'static str,
    /// Value of the x-axis parameter.
    pub x: f64,
    /// Protocol the point belongs to.
    pub protocol: &'static str,
    /// Committed transactions per second.
    pub throughput_tps: f64,
    /// Fraction of transaction attempts that committed.
    pub commit_rate: f64,
    /// Total lock entries (state-size experiments), when meaningful.
    pub locks: Option<usize>,
    /// Total stored versions (state-size experiments), when meaningful.
    pub versions: Option<usize>,
}

/// A whole figure: its identifier, a descriptive title and its data points.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureTable {
    /// Figure identifier ("fig1", "fig6", "ablation-delta", ...).
    pub id: &'static str,
    /// Human-readable description, matching the paper's caption.
    pub title: String,
    /// The data points, grouped by x then protocol.
    pub rows: Vec<FigureRow>,
}

impl FigureTable {
    /// Renders the table as aligned text, one line per row.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {} — {}\n", self.id, self.title));
        if self.rows.is_empty() {
            out.push_str("(no data)\n");
            return out;
        }
        out.push_str(&format!(
            "{:<12} {:<14} {:>14} {:>12} {:>10} {:>10}\n",
            self.rows[0].x_label, "protocol", "throughput_tps", "commit_rate", "locks", "versions"
        ));
        for row in &self.rows {
            out.push_str(&format!(
                "{:<12} {:<14} {:>14.1} {:>12.3} {:>10} {:>10}\n",
                row.x,
                row.protocol,
                row.throughput_tps,
                row.commit_rate,
                row.locks.map_or("-".to_string(), |l| l.to_string()),
                row.versions.map_or("-".to_string(), |v| v.to_string()),
            ));
        }
        out
    }

    /// The rows belonging to one protocol, in x order.
    #[must_use]
    pub fn series(&self, protocol: &str) -> Vec<&FigureRow> {
        self.rows
            .iter()
            .filter(|r| r.protocol == protocol)
            .collect()
    }
}

fn aggregate_row(x_label: &'static str, x: f64, config: SimConfig) -> FigureRow {
    let metrics = Simulation::new(config).run();
    FigureRow {
        x_label,
        x,
        protocol: metrics.protocol,
        throughput_tps: metrics.throughput_tps(),
        commit_rate: metrics.commit_rate(),
        locks: Some(metrics.final_locks),
        versions: Some(metrics.final_versions),
    }
}

/// Figure 1: effect of the concurrency level on throughput and commit rate,
/// local test bed (20 ops/tx, 25% writes, 10K keys, 3 servers).
#[must_use]
pub fn fig1_concurrency_local(scale: Scale) -> FigureTable {
    concurrency_sweep(
        "fig1",
        "Effect of concurrency level on performance, local test bed",
        scale,
        &[15, 150, 300, 450, 600],
        |protocol, scale| {
            SimConfig::local_cluster(protocol)
                .keys(scale.scale_keys(10_000))
                .ops_per_tx(20)
                .write_fraction(0.25)
                .duration_secs(scale.duration_secs())
        },
    )
}

/// Figure 2: effect of the concurrency level, cloud test bed (50K keys, 8 servers).
#[must_use]
pub fn fig2_concurrency_cloud(scale: Scale) -> FigureTable {
    concurrency_sweep(
        "fig2",
        "Effect of concurrency level on performance, cloud test bed",
        scale,
        &[25, 100, 200, 300, 400],
        |protocol, scale| {
            SimConfig::public_cloud(protocol)
                .keys(scale.scale_keys(50_000))
                .ops_per_tx(20)
                .write_fraction(0.25)
                .duration_secs(scale.duration_secs())
        },
    )
}

fn concurrency_sweep(
    id: &'static str,
    title: &str,
    scale: Scale,
    paper_clients: &[usize],
    base: impl Fn(Protocol, Scale) -> SimConfig,
) -> FigureTable {
    let mut rows = Vec::new();
    for clients in scale.scale_clients(paper_clients) {
        for protocol in Protocol::all() {
            let config = base(protocol, scale).clients(clients);
            rows.push(aggregate_row("clients", clients as f64, config));
        }
    }
    FigureTable {
        id,
        title: title.to_string(),
        rows,
    }
}

/// Figure 3: effect of the fraction of write operations (90 clients, 20 ops/tx,
/// 10K keys, local test bed). The paper plots MVTO+, 2PL and MVTIL-early.
#[must_use]
pub fn fig3_write_fraction(scale: Scale) -> FigureTable {
    let clients = match scale {
        Scale::Paper => 90,
        Scale::Quick => 30,
        Scale::Smoke => 12,
    };
    let fractions = match scale {
        Scale::Smoke => vec![0.0, 0.5, 1.0],
        _ => vec![0.0, 0.25, 0.5, 0.75, 1.0],
    };
    let mut rows = Vec::new();
    for fraction in fractions {
        for protocol in [
            Protocol::MvtoPlus,
            Protocol::TwoPhaseLocking,
            Protocol::MvtilEarly,
        ] {
            let config = SimConfig::local_cluster(protocol)
                .clients(clients)
                .keys(scale.scale_keys(10_000))
                .write_fraction(fraction)
                .duration_secs(scale.duration_secs());
            rows.push(aggregate_row("write_pct", fraction * 100.0, config));
        }
    }
    FigureTable {
        id: "fig3",
        title: "Effect of fraction of writes on performance".to_string(),
        rows,
    }
}

/// Figure 4: small transactions (8 operations, 50% writes) while varying the
/// concurrency level on the local test bed.
#[must_use]
pub fn fig4_small_transactions(scale: Scale) -> FigureTable {
    concurrency_sweep(
        "fig4",
        "Effect of small transaction size on performance",
        scale,
        &[15, 150, 300, 450, 600],
        |protocol, scale| {
            SimConfig::local_cluster(protocol)
                .keys(scale.scale_keys(10_000))
                .ops_per_tx(8)
                .write_fraction(0.5)
                .duration_secs(scale.duration_secs())
        },
    )
}

/// Figure 5: effect of the number of servers (400 clients, 20 ops/tx, 100K
/// keys, cloud test bed) with 75% and 50% reads.
#[must_use]
pub fn fig5_servers(scale: Scale) -> FigureTable {
    let clients = match scale {
        Scale::Paper => 400,
        Scale::Quick => 80,
        Scale::Smoke => 20,
    };
    let servers = match scale {
        Scale::Smoke => vec![1, 4],
        _ => vec![1, 5, 10, 15, 20],
    };
    let mut rows = Vec::new();
    for read_pct in [75u64, 50] {
        for &server_count in &servers {
            for protocol in Protocol::all() {
                let config = SimConfig::public_cloud(protocol)
                    .clients(clients)
                    .keys(scale.scale_keys(100_000))
                    .servers(server_count)
                    .write_fraction(1.0 - read_pct as f64 / 100.0)
                    .duration_secs(scale.duration_secs());
                let mut row = aggregate_row("servers", server_count as f64, config);
                // Distinguish the two panels via the protocol label suffix.
                row.x_label = if read_pct == 75 {
                    "servers(75%r)"
                } else {
                    "servers(50%r)"
                };
                rows.push(row);
            }
        }
    }
    FigureTable {
        id: "fig5",
        title: "Effect of number of servers on performance".to_string(),
        rows,
    }
}

fn state_size_config(protocol: Protocol, scale: Scale, gc_secs: Option<u64>) -> SimConfig {
    let (clients, duration, gc_lag) = match scale {
        Scale::Paper => (50, 180, 15),
        Scale::Quick => (25, 20, 3),
        Scale::Smoke => (10, 4, 1),
    };
    SimConfig::local_cluster(protocol)
        .clients(clients)
        .keys(scale.scale_keys(8_000))
        .write_fraction(0.5)
        .ops_per_tx(20)
        .duration_secs(duration)
        .gc_every_secs(gc_secs)
        .gc_lag_secs(gc_lag)
}

/// Figure 6: number of locks and versions as time passes, with garbage
/// collection on and off (50 clients, 20 ops/tx, 50% writes, 8K keys).
#[must_use]
pub fn fig6_state_size(scale: Scale) -> FigureTable {
    let gc_period = match scale {
        Scale::Paper => 15,
        Scale::Quick => 3,
        Scale::Smoke => 1,
    };
    let variants: [(&'static str, Protocol, Option<u64>); 3] = [
        ("MVTO+", Protocol::MvtoPlus, None),
        ("MVTIL-early", Protocol::MvtilEarly, None),
        ("MVTIL-GC", Protocol::MvtilEarly, Some(gc_period)),
    ];
    let mut rows = Vec::new();
    for (label, protocol, gc) in variants {
        let metrics = Simulation::new(state_size_config(protocol, scale, gc)).run();
        for point in &metrics.series {
            rows.push(FigureRow {
                x_label: "time_s",
                x: point.time_secs,
                protocol: label,
                throughput_tps: point.throughput_tps,
                commit_rate: point.commit_rate,
                locks: Some(point.locks),
                versions: Some(point.versions),
            });
        }
    }
    FigureTable {
        id: "fig6",
        title: "Number of locks and versions as time passes (GC on and off)".to_string(),
        rows,
    }
}

/// Figure 7: throughput and commit rate as time passes, with garbage collection
/// on and off (same workload as Figure 6, longer horizon).
#[must_use]
pub fn fig7_gc_over_time(scale: Scale) -> FigureTable {
    let gc_period = match scale {
        Scale::Paper => 15,
        Scale::Quick => 3,
        Scale::Smoke => 1,
    };
    let variants: [(&'static str, Protocol, Option<u64>); 4] = [
        ("MVTO+", Protocol::MvtoPlus, None),
        ("2PL", Protocol::TwoPhaseLocking, None),
        ("MVTIL-early", Protocol::MvtilEarly, None),
        ("MVTIL-GC", Protocol::MvtilEarly, Some(gc_period)),
    ];
    let mut rows = Vec::new();
    for (label, protocol, gc) in variants {
        let mut config = state_size_config(protocol, scale, gc);
        if scale == Scale::Paper {
            config = config.duration_secs(600);
        }
        let metrics = Simulation::new(config).run();
        for point in &metrics.series {
            rows.push(FigureRow {
                x_label: "time_s",
                x: point.time_secs,
                protocol: label,
                throughput_tps: point.throughput_tps,
                commit_rate: point.commit_rate,
                locks: Some(point.locks),
                versions: Some(point.versions),
            });
        }
    }
    FigureTable {
        id: "fig7",
        title: "Performance as time passes with garbage collection on and off".to_string(),
        rows,
    }
}

/// Registry sweep: every engine the string-spec registry knows, driven through
/// the threaded closed-loop runner via the object-safe `dyn Engine` layer.
///
/// This is the local-test-bed companion to the simulator figures: because the
/// engine list comes from [`mvtl_registry::all_specs`], wiring a new engine
/// into the registry automatically enrolls it here (and in the `fig1 --smoke`
/// CI step, which fails if any engine stops committing).
#[must_use]
pub fn engine_grid(scale: Scale) -> FigureTable {
    engine_grid_with_skew(scale, KeyDist::Uniform)
}

/// [`engine_grid`] under an arbitrary key distribution: the skew axis of the
/// sweep. Uniform reproduces the paper's setup; `zipf(0.99)` / hot-set runs
/// put every engine (including the partitioned `sharded` ones) under the
/// contention regime where concurrency-control protocols differentiate.
#[must_use]
pub fn engine_grid_with_skew(scale: Scale, dist: KeyDist) -> FigureTable {
    let (clients_list, duration_ms): (&[usize], u64) = match scale {
        Scale::Smoke => (&[4], 80),
        Scale::Quick => (&[4, 8], 200),
        Scale::Paper => (&[4, 8, 16, 32], 1_000),
    };
    let x_label: &'static str = match dist {
        KeyDist::Uniform => "clients",
        KeyDist::Zipf { .. } => "clients(zipf)",
        KeyDist::HotSet { .. } => "clients(hot)",
    };
    let mut rows = Vec::new();
    for &clients in clients_list {
        for spec in mvtl_registry::all_specs() {
            let engine = mvtl_registry::build(spec)
                .unwrap_or_else(|e| panic!("registry spec {spec:?} must build: {e}"));
            let metrics = run_closed_loop(
                engine.as_ref(),
                &RunnerOptions {
                    clients,
                    duration: Duration::from_millis(duration_ms),
                    spec: WorkloadSpec::new(8, 0.25, 512).with_dist(dist),
                    seed: 42,
                },
                |v| v,
            );
            rows.push(FigureRow {
                x_label,
                x: clients as f64,
                protocol: engine.name(),
                throughput_tps: metrics.throughput_tps(),
                commit_rate: metrics.commit_rate(),
                // Figure-6-style state-size endpoint: final lock entries and
                // stored versions of the real engine (zeros for engines that
                // track no such state, e.g. 2PL).
                locks: Some(metrics.stats_end.lock_entries),
                versions: Some(metrics.stats_end.versions),
            });
        }
    }
    FigureTable {
        id: "engine-grid",
        title: format!(
            "Registry sweep: threaded engines in a closed loop ({} keys)",
            dist.label()
        ),
        rows,
    }
}

/// Verifies that an [`engine_grid`] table covers every registered engine and
/// that each of them committed transactions — the single implementation of
/// the engine-wiring invariant shared by the `fig1 --smoke` CI gate and the
/// test suites.
///
/// # Panics
///
/// Panics when an engine is missing from the grid, never committed, or shows
/// zero throughput: an engine that fails to build from its registry spec, or
/// builds but can no longer commit, aborts the caller instead of silently
/// dropping out of the sweep.
pub fn check_engine_grid(grid: &FigureTable) {
    for spec in mvtl_registry::all_specs() {
        let base = spec.split('?').next().unwrap_or(spec);
        let series = grid.series(base);
        assert!(
            !series.is_empty(),
            "engine {base:?} missing from the registry grid"
        );
        for row in series {
            assert!(
                row.commit_rate > 0.0 && row.throughput_tps > 0.0,
                "engine {base:?} stopped committing (commit rate {}, {} tps)",
                row.commit_rate,
                row.throughput_tps
            );
        }
    }
}

/// Ablation: MVTIL-early vs MVTIL-late commit-timestamp choice under growing
/// contention (design choice called out in `DESIGN.md`).
#[must_use]
pub fn ablation_commit_pick(scale: Scale) -> FigureTable {
    let mut rows = Vec::new();
    for write_fraction in [0.25, 0.5, 0.75] {
        for protocol in [Protocol::MvtilEarly, Protocol::MvtilLate] {
            let config = SimConfig::local_cluster(protocol)
                .clients(match scale {
                    Scale::Paper => 300,
                    Scale::Quick => 60,
                    Scale::Smoke => 16,
                })
                .keys(scale.scale_keys(5_000))
                .write_fraction(write_fraction)
                .duration_secs(scale.duration_secs());
            rows.push(aggregate_row("write_pct", write_fraction * 100.0, config));
        }
    }
    FigureTable {
        id: "ablation-commit-pick",
        title: "Ablation: early vs late commit-timestamp choice".to_string(),
        rows,
    }
}

/// Ablation: MVTIL interval width Δ.
#[must_use]
pub fn ablation_delta(scale: Scale) -> FigureTable {
    let deltas_us: &[u64] = match scale {
        Scale::Smoke => &[1_000, 10_000],
        _ => &[500, 1_000, 5_000, 20_000, 100_000],
    };
    let mut rows = Vec::new();
    for &delta in deltas_us {
        let config = SimConfig::local_cluster(Protocol::MvtilEarly)
            .clients(match scale {
                Scale::Paper => 300,
                Scale::Quick => 60,
                Scale::Smoke => 16,
            })
            .keys(scale.scale_keys(5_000))
            .write_fraction(0.5)
            .delta_us(delta)
            .duration_secs(scale.duration_secs());
        let mut row = aggregate_row("delta_us", delta as f64, config);
        row.protocol = "MVTIL-early";
        rows.push(row);
    }
    FigureTable {
        id: "ablation-delta",
        title: "Ablation: MVTIL interval width Δ".to_string(),
        rows,
    }
}

/// Ablation: garbage-collection period (timestamp-service broadcast interval).
#[must_use]
pub fn ablation_gc_period(scale: Scale) -> FigureTable {
    let periods: &[Option<u64>] = match scale {
        Scale::Smoke => &[None, Some(1)],
        _ => &[None, Some(1), Some(5), Some(15)],
    };
    let mut rows = Vec::new();
    for &period in periods {
        let config =
            state_size_config(Protocol::MvtilEarly, scale, period).gc_lag_secs(period.unwrap_or(1));
        let mut row = aggregate_row(
            "gc_period_s",
            period.map(|p| p as f64).unwrap_or(f64::INFINITY),
            config,
        );
        row.protocol = if period.is_none() {
            "no-GC"
        } else {
            "MVTIL-GC"
        };
        rows.push(row);
    }
    FigureTable {
        id: "ablation-gc-period",
        title: "Ablation: garbage-collection period".to_string(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_fig1_has_all_protocols_and_sane_values() {
        let table = fig1_concurrency_local(Scale::Smoke);
        assert!(!table.rows.is_empty());
        for protocol in Protocol::all() {
            let series = table.series(protocol.name());
            assert!(!series.is_empty(), "{} missing", protocol.name());
            for row in series {
                assert!(row.throughput_tps > 0.0);
                assert!(row.commit_rate > 0.0 && row.commit_rate <= 1.0);
            }
        }
        let rendered = table.render();
        assert!(rendered.contains("fig1"));
        assert!(rendered.contains("MVTIL-early"));
    }

    #[test]
    fn smoke_fig6_series_shows_gc_bounding_state() {
        let table = fig6_state_size(Scale::Smoke);
        let no_gc: Vec<_> = table.series("MVTIL-early");
        let with_gc: Vec<_> = table.series("MVTIL-GC");
        assert!(!no_gc.is_empty() && !with_gc.is_empty());
        let last_no_gc = no_gc.last().unwrap().versions.unwrap();
        let last_with_gc = with_gc.last().unwrap().versions.unwrap();
        assert!(
            last_with_gc <= last_no_gc,
            "GC must not increase stored versions ({last_with_gc} vs {last_no_gc})"
        );
    }

    #[test]
    fn engine_grid_covers_every_registry_spec() {
        check_engine_grid(&engine_grid(Scale::Smoke));
    }

    #[test]
    fn skewed_engine_grid_keeps_every_engine_committing() {
        // The zipf(0.99) axis: all engines — including the partitioned
        // `sharded` specs, whose hot keys concentrate on a few shards — must
        // keep committing under heavy skew.
        check_engine_grid(&engine_grid_with_skew(
            Scale::Smoke,
            KeyDist::Zipf { theta: 0.99 },
        ));
    }

    #[test]
    fn render_handles_empty_tables() {
        let table = FigureTable {
            id: "empty",
            title: "nothing".to_string(),
            rows: vec![],
        };
        assert!(table.render().contains("(no data)"));
    }
}
