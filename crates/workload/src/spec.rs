//! Statistical workload specifications (§8.3).

use mvtl_common::Key;
use rand::Rng;

/// One generated transaction body: the keys to access and whether each access
/// is a write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxTemplate {
    /// Planned operations, in order.
    pub ops: Vec<(Key, bool)>,
}

impl TxTemplate {
    /// Keys that will be written.
    #[must_use]
    pub fn write_keys(&self) -> Vec<Key> {
        self.ops
            .iter()
            .filter(|(_, w)| *w)
            .map(|(k, _)| *k)
            .collect()
    }

    /// Number of read operations.
    #[must_use]
    pub fn reads(&self) -> usize {
        self.ops.iter().filter(|(_, w)| !*w).count()
    }

    /// Number of write operations.
    #[must_use]
    pub fn writes(&self) -> usize {
        self.ops.len() - self.reads()
    }
}

/// The workload parameters the paper fixes per experiment (§8.3): transaction
/// size, write fraction and key-space size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Operations per transaction (20 in most experiments, 8 in Figure 4).
    pub ops_per_tx: usize,
    /// Fraction of operations that are writes.
    pub write_fraction: f64,
    /// Number of distinct keys, drawn uniformly (as in the paper).
    pub keys: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            ops_per_tx: 20,
            write_fraction: 0.25,
            keys: 10_000,
        }
    }
}

impl WorkloadSpec {
    /// Creates a specification.
    #[must_use]
    pub fn new(ops_per_tx: usize, write_fraction: f64, keys: u64) -> Self {
        WorkloadSpec {
            ops_per_tx: ops_per_tx.max(1),
            write_fraction: write_fraction.clamp(0.0, 1.0),
            keys: keys.max(1),
        }
    }

    /// Generates one transaction body.
    pub fn generate<R: Rng>(&self, rng: &mut R) -> TxTemplate {
        let ops = (0..self.ops_per_tx)
            .map(|_| {
                (
                    Key(rng.gen_range(0..self.keys)),
                    rng.gen_bool(self.write_fraction),
                )
            })
            .collect();
        TxTemplate { ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generation_respects_parameters() {
        let spec = WorkloadSpec::new(20, 0.25, 100);
        let mut rng = StdRng::seed_from_u64(1);
        let mut writes = 0usize;
        let mut total = 0usize;
        for _ in 0..200 {
            let tx = spec.generate(&mut rng);
            assert_eq!(tx.ops.len(), 20);
            assert_eq!(tx.reads() + tx.writes(), 20);
            for (key, _) in &tx.ops {
                assert!(key.0 < 100);
            }
            writes += tx.writes();
            total += tx.ops.len();
        }
        let fraction = writes as f64 / total as f64;
        assert!((fraction - 0.25).abs() < 0.05, "write fraction {fraction}");
    }

    #[test]
    fn extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        let read_only = WorkloadSpec::new(8, 0.0, 10).generate(&mut rng);
        assert_eq!(read_only.writes(), 0);
        let write_only = WorkloadSpec::new(8, 1.0, 10).generate(&mut rng);
        assert_eq!(write_only.reads(), 0);
        assert_eq!(write_only.write_keys().len(), 8);
    }

    #[test]
    fn clamping() {
        let spec = WorkloadSpec::new(0, 2.0, 0);
        assert_eq!(spec.ops_per_tx, 1);
        assert_eq!(spec.write_fraction, 1.0);
        assert_eq!(spec.keys, 1);
    }
}
