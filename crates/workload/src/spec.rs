//! Statistical workload specifications (§8.3).

use mvtl_common::Key;
use rand::distributions::Zipf;
use rand::Rng;

/// How keys are drawn from the key space.
///
/// The paper's experiments draw keys uniformly (§8.3); the contention
/// literature (heterogeneous access models, YCSB's zipfian request streams)
/// shows skew is exactly where concurrency-control protocols differentiate,
/// so the workload generator supports the standard skewed shapes too.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum KeyDist {
    /// Every key equally likely (the paper's setup).
    #[default]
    Uniform,
    /// Zipfian popularity: the k-th most popular key has probability
    /// ∝ `k^(-theta)`. `theta = 0.99` is YCSB's default skew.
    Zipf {
        /// The skew exponent θ ≥ 0 (0 degenerates to uniform).
        theta: f64,
    },
    /// A hot set: with probability `hot_fraction` the access goes to one of
    /// the first `hot_keys` keys (uniformly), otherwise to the rest of the
    /// key space (uniformly).
    HotSet {
        /// Number of keys in the hot set (clamped to the key space).
        hot_keys: u64,
        /// Probability that an access targets the hot set, in `[0, 1]`.
        hot_fraction: f64,
    },
}

impl KeyDist {
    /// A short label for reports ("uniform", "zipf(0.99)", "hot(8@90%)").
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            KeyDist::Uniform => "uniform".to_string(),
            KeyDist::Zipf { theta } => format!("zipf({theta})"),
            KeyDist::HotSet {
                hot_keys,
                hot_fraction,
            } => format!("hot({hot_keys}@{:.0}%)", hot_fraction * 100.0),
        }
    }
}

/// A ready-to-draw sampler for one `(KeyDist, key-space)` pair.
///
/// Setting up the Zipf rejection-inversion constants costs a handful of
/// transcendental operations, so hot loops (the closed-loop runner, figure
/// sweeps) build the sampler once per thread via
/// [`WorkloadSpec::key_sampler`] and draw from it many times.
#[derive(Debug, Clone, Copy)]
pub struct KeySampler {
    keys: u64,
    kind: SamplerKind,
}

#[derive(Debug, Clone, Copy)]
enum SamplerKind {
    Uniform,
    Zipf(Zipf),
    HotSet { hot: u64, hot_fraction: f64 },
}

impl KeySampler {
    fn new(dist: KeyDist, keys: u64) -> Self {
        let kind = match dist {
            KeyDist::Uniform => SamplerKind::Uniform,
            KeyDist::Zipf { theta } => match Zipf::new(keys, theta.max(0.0)) {
                Ok(zipf) => SamplerKind::Zipf(zipf),
                Err(_) => SamplerKind::Uniform,
            },
            KeyDist::HotSet {
                hot_keys,
                hot_fraction,
            } => SamplerKind::HotSet {
                hot: hot_keys.clamp(1, keys),
                hot_fraction: hot_fraction.clamp(0.0, 1.0),
            },
        };
        KeySampler { keys, kind }
    }

    /// Draws one key index in `[0, keys)`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        match self.kind {
            SamplerKind::Uniform => rng.gen_range(0..self.keys),
            // Rank r ∈ [1, keys]: map the most popular rank to key 0 so hot
            // keys are stable across transaction templates.
            SamplerKind::Zipf(zipf) => zipf.sample_index(rng) - 1,
            SamplerKind::HotSet { hot, hot_fraction } => {
                if hot == self.keys || rng.gen_bool(hot_fraction) {
                    rng.gen_range(0..hot)
                } else {
                    rng.gen_range(hot..self.keys)
                }
            }
        }
    }
}

/// One generated transaction body: the keys to access and whether each access
/// is a write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxTemplate {
    /// Planned operations, in order.
    pub ops: Vec<(Key, bool)>,
}

impl TxTemplate {
    /// Keys that will be written.
    #[must_use]
    pub fn write_keys(&self) -> Vec<Key> {
        self.ops
            .iter()
            .filter(|(_, w)| *w)
            .map(|(k, _)| *k)
            .collect()
    }

    /// Number of read operations.
    #[must_use]
    pub fn reads(&self) -> usize {
        self.ops.iter().filter(|(_, w)| !*w).count()
    }

    /// Number of write operations.
    #[must_use]
    pub fn writes(&self) -> usize {
        self.ops.len() - self.reads()
    }
}

/// The workload parameters the paper fixes per experiment (§8.3): transaction
/// size, write fraction and key-space size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Operations per transaction (20 in most experiments, 8 in Figure 4).
    pub ops_per_tx: usize,
    /// Fraction of operations that are writes.
    pub write_fraction: f64,
    /// Number of distinct keys.
    pub keys: u64,
    /// How keys are drawn from the key space (uniform, as in the paper, by
    /// default).
    pub dist: KeyDist,
    /// Maximum operations issued per batched call: runs of consecutive
    /// same-kind operations are grouped into `read_many`/`write_many` calls
    /// of at most this many operations. `1` (the default) runs the classic
    /// op-by-op loop.
    pub batch: usize,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            ops_per_tx: 20,
            write_fraction: 0.25,
            keys: 10_000,
            dist: KeyDist::Uniform,
            batch: 1,
        }
    }
}

impl WorkloadSpec {
    /// Creates a specification with uniformly drawn keys.
    #[must_use]
    pub fn new(ops_per_tx: usize, write_fraction: f64, keys: u64) -> Self {
        WorkloadSpec {
            ops_per_tx: ops_per_tx.max(1),
            write_fraction: write_fraction.clamp(0.0, 1.0),
            keys: keys.max(1),
            dist: KeyDist::Uniform,
            batch: 1,
        }
    }

    /// Returns the specification with the given key distribution.
    #[must_use]
    pub fn with_dist(mut self, dist: KeyDist) -> Self {
        self.dist = dist;
        self
    }

    /// Returns the specification with the given batch size (clamped to ≥ 1).
    /// Batch size 1 keeps the op-by-op execution path.
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Returns the specification with Zipfian key skew of exponent `theta`.
    #[must_use]
    pub fn with_zipf(self, theta: f64) -> Self {
        self.with_dist(KeyDist::Zipf { theta })
    }

    /// Builds the reusable key sampler for this specification. Hot loops
    /// should build it once per thread and pass it to
    /// [`WorkloadSpec::generate_with`].
    #[must_use]
    pub fn key_sampler(&self) -> KeySampler {
        KeySampler::new(self.dist, self.keys)
    }

    /// Generates one transaction body. Convenience form of
    /// [`WorkloadSpec::generate_with`] that rebuilds the key sampler.
    pub fn generate<R: Rng>(&self, rng: &mut R) -> TxTemplate {
        self.generate_with(&self.key_sampler(), rng)
    }

    /// Generates one transaction body using a prebuilt [`KeySampler`].
    pub fn generate_with<R: Rng>(&self, sampler: &KeySampler, rng: &mut R) -> TxTemplate {
        let ops = (0..self.ops_per_tx)
            .map(|_| (Key(sampler.sample(rng)), rng.gen_bool(self.write_fraction)))
            .collect();
        TxTemplate { ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generation_respects_parameters() {
        let spec = WorkloadSpec::new(20, 0.25, 100);
        let mut rng = StdRng::seed_from_u64(1);
        let mut writes = 0usize;
        let mut total = 0usize;
        for _ in 0..200 {
            let tx = spec.generate(&mut rng);
            assert_eq!(tx.ops.len(), 20);
            assert_eq!(tx.reads() + tx.writes(), 20);
            for (key, _) in &tx.ops {
                assert!(key.0 < 100);
            }
            writes += tx.writes();
            total += tx.ops.len();
        }
        let fraction = writes as f64 / total as f64;
        assert!((fraction - 0.25).abs() < 0.05, "write fraction {fraction}");
    }

    #[test]
    fn extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        let read_only = WorkloadSpec::new(8, 0.0, 10).generate(&mut rng);
        assert_eq!(read_only.writes(), 0);
        let write_only = WorkloadSpec::new(8, 1.0, 10).generate(&mut rng);
        assert_eq!(write_only.reads(), 0);
        assert_eq!(write_only.write_keys().len(), 8);
    }

    #[test]
    fn clamping() {
        let spec = WorkloadSpec::new(0, 2.0, 0);
        assert_eq!(spec.ops_per_tx, 1);
        assert_eq!(spec.write_fraction, 1.0);
        assert_eq!(spec.keys, 1);
    }

    fn key_histogram(spec: &WorkloadSpec, seed: u64, templates: usize) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0u64; spec.keys as usize];
        for _ in 0..templates {
            for (key, _) in spec.generate(&mut rng).ops {
                assert!(key.0 < spec.keys);
                counts[key.0 as usize] += 1;
            }
        }
        counts
    }

    #[test]
    fn zipf_skew_concentrates_accesses_on_low_keys() {
        let spec = WorkloadSpec::new(10, 0.5, 100).with_zipf(0.99);
        let counts = key_histogram(&spec, 3, 1_000);
        let total: u64 = counts.iter().sum();
        let top10: u64 = counts[..10].iter().sum();
        assert!(
            top10 * 2 > total,
            "zipf(0.99): top 10% of keys should draw the majority of accesses \
             (got {top10}/{total})"
        );
        assert!(counts[0] > counts[50].max(1) * 5, "head beats the tail");
    }

    #[test]
    fn hot_set_respects_the_configured_fraction() {
        let spec = WorkloadSpec::new(10, 0.5, 1_000).with_dist(KeyDist::HotSet {
            hot_keys: 10,
            hot_fraction: 0.9,
        });
        let counts = key_histogram(&spec, 4, 1_000);
        let total: u64 = counts.iter().sum();
        let hot: u64 = counts[..10].iter().sum();
        let fraction = hot as f64 / total as f64;
        assert!(
            (fraction - 0.9).abs() < 0.03,
            "hot-set fraction {fraction} should be ~0.9"
        );
    }

    #[test]
    fn zipf_theta_zero_and_uniform_agree_statistically() {
        let uniform = key_histogram(&WorkloadSpec::new(10, 0.5, 50), 5, 2_000);
        let zipf0 = key_histogram(&WorkloadSpec::new(10, 0.5, 50).with_zipf(0.0), 5, 2_000);
        let expected = 10 * 2_000 / 50;
        for counts in [&uniform, &zipf0] {
            for &c in counts.iter() {
                assert!(
                    (c as i64 - expected as i64).unsigned_abs() < expected / 2,
                    "count {c} too far from uniform expectation {expected}"
                );
            }
        }
    }

    #[test]
    fn dist_labels_render() {
        assert_eq!(KeyDist::Uniform.label(), "uniform");
        assert_eq!(KeyDist::Zipf { theta: 0.99 }.label(), "zipf(0.99)");
        assert_eq!(
            KeyDist::HotSet {
                hot_keys: 8,
                hot_fraction: 0.9
            }
            .label(),
            "hot(8@90%)"
        );
    }

    #[test]
    fn degenerate_hot_set_covers_the_whole_key_space() {
        let spec = WorkloadSpec::new(4, 0.5, 5).with_dist(KeyDist::HotSet {
            hot_keys: 100,
            hot_fraction: 0.5,
        });
        let counts = key_histogram(&spec, 6, 500);
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
    }
}
