//! Property-based equivalence of [`ArenaChain`] against the reference
//! [`VersionChain`].
//!
//! The arena chain is the hot-path replacement: versions live inline (with
//! arena-pooled spill buffers) instead of in a per-key `Vec`. Its observable
//! behaviour must be byte-for-byte the reference chain's under any
//! interleaving of `install` and `purge_below` — including the purged-read
//! contract (`latest_before` below the purge bound must report the bound) and
//! duplicate-timestamp replacement.

use mvtl_common::Timestamp;
use mvtl_storage::{ArenaChain, ChainArena, Version, VersionChain};
use proptest::prelude::*;

/// One step of an interleaved history.
#[derive(Debug, Clone)]
enum Op {
    /// Commit a version at the timestamp.
    Install(Timestamp, u64),
    /// GC everything below the timestamp (keeping the newest version below).
    Purge(Timestamp),
}

/// Timestamps on a small grid so duplicate installs, purge boundaries and
/// adjacent versions actually collide.
fn arb_ts() -> impl Strategy<Value = Timestamp> {
    (1u64..32, 0u32..3).prop_map(|(v, p)| Timestamp::new(v, p))
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_ts(), 0u64..1_000).prop_map(|(t, v)| Op::Install(t, v)),
        // Three install arms to one purge arm: the shim's choice is uniform,
        // and histories should mostly grow so purges have something to cut.
        (arb_ts(), 0u64..1_000).prop_map(|(t, v)| Op::Install(t, v)),
        (arb_ts(), 0u64..1_000).prop_map(|(t, v)| Op::Install(t, v)),
        arb_ts().prop_map(Op::Purge),
    ]
}

fn arb_history() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(arb_op(), 0..48)
}

/// Every timestamp worth probing, including `ZERO` and points past the grid.
fn probe_grid() -> Vec<Timestamp> {
    let mut pts = vec![Timestamp::ZERO];
    for v in 1..34u64 {
        for p in 0..3u32 {
            pts.push(Timestamp::new(v, p));
        }
    }
    pts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arena_chain_matches_the_reference_chain(history in arb_history()) {
        let mut arena = ChainArena::new();
        let mut fast: ArenaChain<u64> = ArenaChain::new();
        let mut reference: VersionChain<u64> = VersionChain::new();

        for op in &history {
            match *op {
                Op::Install(ts, value) => {
                    let replaced = fast.install(ts, value, &mut arena);
                    prop_assert_eq!(replaced, reference.install(ts, value),
                        "install({:?}) replaced different values", ts);
                }
                Op::Purge(bound) => {
                    let removed = fast.purge_below(bound, &mut arena);
                    prop_assert_eq!(removed, reference.purge_below(bound),
                        "purge_below({:?}) removed different counts", bound);
                }
            }

            // After every step, the chains must be observationally identical.
            prop_assert_eq!(fast.len(), reference.len());
            prop_assert_eq!(fast.is_empty(), reference.is_empty());
            prop_assert_eq!(fast.purged_below(), reference.purged_below());
            prop_assert_eq!(fast.latest().map(|(t, v)| (t, *v)),
                reference.latest().map(|(t, v)| (t, *v)));
            let fast_versions: Vec<Version<u64>> = fast.iter().collect();
            let reference_versions: Vec<Version<u64>> = reference.iter().collect();
            prop_assert_eq!(fast_versions, reference_versions);
        }

        // Full read sweep at the end: every probe point agrees on both the
        // exact-timestamp lookup and the snapshot read, including purged-read
        // errors carrying the same bound.
        for ts in probe_grid() {
            prop_assert_eq!(fast.at(ts), reference.at(ts), "at({:?})", ts);
            prop_assert_eq!(fast.latest_before(ts), reference.latest_before(ts),
                "latest_before({:?})", ts);
        }
        prop_assert_eq!(fast.stats(), reference.stats());
    }

    #[test]
    fn spill_and_shrink_round_trips_through_the_arena(extra in 0usize..24) {
        // Grow one chain past its inline capacity, purge it back under, and
        // grow again: the spill buffer must round-trip through the arena pool
        // with the reference chain agreeing at every point.
        let mut arena = ChainArena::new();
        let mut fast: ArenaChain<u64> = ArenaChain::new();
        let mut reference: VersionChain<u64> = VersionChain::new();
        let total = mvtl_storage::INLINE_VERSIONS + extra;
        for i in 0..total {
            let ts = Timestamp::new(i as u64 + 1, 0);
            fast.install(ts, i as u64, &mut arena);
            reference.install(ts, i as u64);
        }
        let bound = Timestamp::new(total as u64, 0);
        prop_assert_eq!(fast.purge_below(bound, &mut arena), reference.purge_below(bound));
        for i in 0..total {
            let ts = Timestamp::new((total + i) as u64 + 1, 0);
            prop_assert_eq!(fast.install(ts, i as u64, &mut arena),
                reference.install(ts, i as u64));
        }
        prop_assert_eq!(fast.len(), reference.len());
        for ts in probe_grid() {
            prop_assert_eq!(fast.latest_before(ts), reference.latest_before(ts),
                "latest_before({:?})", ts);
        }
    }
}
