//! Per-key chains of committed versions.

use crate::VersionStats;
use mvtl_common::Timestamp;
use std::collections::BTreeMap;

/// A single committed version of a key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Version<V> {
    /// Commit timestamp of the transaction that produced the version.
    pub timestamp: Timestamp,
    /// The committed value.
    pub value: V,
}

/// The committed versions of one key, ordered by timestamp.
///
/// The implicit initial version `⊥` at [`Timestamp::ZERO`] is always present
/// conceptually: [`VersionChain::latest_before`] returns
/// `(Timestamp::ZERO, None)` when no committed version precedes the requested
/// timestamp, matching the paper's `Values[k, 0] = ⊥`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionChain<V> {
    versions: BTreeMap<Timestamp, V>,
    purged_below: Timestamp,
    purged_count: usize,
}

impl<V> Default for VersionChain<V> {
    fn default() -> Self {
        VersionChain {
            versions: BTreeMap::new(),
            purged_below: Timestamp::ZERO,
            purged_count: 0,
        }
    }
}

impl<V: Clone> VersionChain<V> {
    /// Creates a chain holding only the implicit initial `⊥` version.
    #[must_use]
    pub fn new() -> Self {
        VersionChain::default()
    }

    /// Installs a committed version at `ts`.
    ///
    /// Timestamps are unique per committing transaction (§4.1), so installing
    /// twice at the same timestamp indicates an engine bug; the newer value
    /// wins and the previous value is returned for the caller to detect it.
    pub fn install(&mut self, ts: Timestamp, value: V) -> Option<V> {
        self.versions.insert(ts, value)
    }

    /// The version with the largest timestamp strictly before `ts`.
    ///
    /// Returns the version's timestamp and its value; `(Timestamp::ZERO, None)`
    /// stands for the initial `⊥` version. Returns `Err(purged_below)` when the
    /// requested read would need a version that has been purged (§6: such
    /// transactions must abort).
    pub fn latest_before(&self, ts: Timestamp) -> Result<(Timestamp, Option<V>), Timestamp> {
        match self.versions.range(..ts).next_back() {
            Some((t, v)) => Ok((*t, Some(v.clone()))),
            None => {
                if self.purged_count > 0 && ts <= self.purged_below {
                    // Versions below purged_below were discarded; a read below
                    // that bound can no longer be served correctly.
                    Err(self.purged_below)
                } else {
                    Ok((Timestamp::ZERO, None))
                }
            }
        }
    }

    /// The value committed exactly at `ts`, if any.
    #[must_use]
    pub fn at(&self, ts: Timestamp) -> Option<&V> {
        self.versions.get(&ts)
    }

    /// The largest committed timestamp, if any version exists.
    #[must_use]
    pub fn latest(&self) -> Option<(Timestamp, &V)> {
        self.versions.iter().next_back().map(|(t, v)| (*t, v))
    }

    /// Purges versions with timestamp below `bound`, keeping the most recent
    /// version below the bound so that reads above the bound still succeed
    /// (§6: "we can purge versions with timestamps below the bound except the
    /// last one before the bound").
    ///
    /// Returns how many versions were removed.
    pub fn purge_below(&mut self, bound: Timestamp) -> usize {
        let keep_latest_below = self.versions.range(..bound).next_back().map(|(t, _)| *t);
        let to_remove: Vec<Timestamp> = self
            .versions
            .range(..bound)
            .map(|(t, _)| *t)
            .filter(|t| Some(*t) != keep_latest_below)
            .collect();
        let removed = to_remove.len();
        for t in to_remove {
            self.versions.remove(&t);
        }
        if bound > self.purged_below {
            self.purged_below = bound;
        }
        self.purged_count += removed;
        removed
    }

    /// Number of committed versions currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Whether no committed version exists (only the implicit `⊥`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Iterates over the committed versions in timestamp order.
    pub fn iter(&self) -> impl Iterator<Item = Version<V>> + '_ {
        self.versions.iter().map(|(t, v)| Version {
            timestamp: *t,
            value: v.clone(),
        })
    }

    /// The purge bound below which old versions have been discarded.
    #[must_use]
    pub fn purged_below(&self) -> Timestamp {
        self.purged_below
    }

    /// Statistics for this chain.
    #[must_use]
    pub fn stats(&self) -> VersionStats {
        VersionStats {
            versions: self.versions.len(),
            purged: self.purged_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: u64) -> Timestamp {
        Timestamp::at(v)
    }

    #[test]
    fn empty_chain_reads_bottom() {
        let chain: VersionChain<u64> = VersionChain::new();
        assert_eq!(chain.latest_before(ts(100)), Ok((Timestamp::ZERO, None)));
        assert!(chain.is_empty());
        assert_eq!(chain.latest(), None);
    }

    #[test]
    fn latest_before_picks_largest_smaller_timestamp() {
        // The example of §3: X has versions a@2 and b@9.
        let mut chain = VersionChain::new();
        chain.install(ts(2), "a");
        chain.install(ts(9), "b");
        assert_eq!(chain.latest_before(ts(6)), Ok((ts(2), Some("a"))));
        assert_eq!(chain.latest_before(ts(10)), Ok((ts(9), Some("b"))));
        assert_eq!(chain.latest_before(ts(2)), Ok((Timestamp::ZERO, None)));
        assert_eq!(chain.latest_before(ts(9)), Ok((ts(2), Some("a"))));
    }

    #[test]
    fn read_is_exclusive_of_own_timestamp() {
        let mut chain = VersionChain::new();
        chain.install(ts(5), 50u64);
        // A reader at exactly 5 sees the version strictly before 5.
        assert_eq!(chain.latest_before(ts(5)), Ok((Timestamp::ZERO, None)));
        assert_eq!(chain.latest_before(ts(5).succ()), Ok((ts(5), Some(50))));
    }

    #[test]
    fn install_returns_previous_on_duplicate() {
        let mut chain = VersionChain::new();
        assert_eq!(chain.install(ts(3), 1u64), None);
        assert_eq!(chain.install(ts(3), 2u64), Some(1));
        assert_eq!(chain.at(ts(3)), Some(&2));
    }

    #[test]
    fn purge_keeps_latest_below_bound() {
        let mut chain = VersionChain::new();
        for v in [1u64, 3, 5, 7, 9] {
            chain.install(ts(v), v);
        }
        let removed = chain.purge_below(ts(6));
        // 1 and 3 removed; 5 kept because it is the latest below the bound.
        assert_eq!(removed, 2);
        assert_eq!(chain.len(), 3);
        assert_eq!(chain.latest_before(ts(6)), Ok((ts(5), Some(5))));
        assert_eq!(chain.latest_before(ts(8)), Ok((ts(7), Some(7))));
        assert_eq!(chain.purged_below(), ts(6));
        assert_eq!(chain.stats().purged, 2);
    }

    #[test]
    fn reads_below_purge_bound_fail() {
        let mut chain = VersionChain::new();
        chain.install(ts(5), 0u64);
        chain.install(ts(10), 1u64);
        chain.install(ts(20), 2u64);
        chain.purge_below(ts(15));
        // The version at 5 was discarded, so a read "before 7" can no longer be
        // served correctly and must report the purge bound.
        assert_eq!(chain.latest_before(ts(7)), Err(ts(15)));
        // Reading before 12 still works: version 10 was kept as latest-below-bound.
        assert_eq!(chain.latest_before(ts(12)), Ok((ts(10), Some(1))));
        // Purging never happened below 15 for a chain that had nothing there,
        // so a fresh chain keeps serving the initial version.
        let mut fresh: VersionChain<u64> = VersionChain::new();
        fresh.purge_below(ts(15));
        assert_eq!(fresh.latest_before(ts(7)), Ok((Timestamp::ZERO, None)));
    }

    #[test]
    fn iteration_in_timestamp_order() {
        let mut chain = VersionChain::new();
        chain.install(ts(9), 9u64);
        chain.install(ts(1), 1u64);
        chain.install(ts(4), 4u64);
        let tss: Vec<u64> = chain.iter().map(|v| v.timestamp.value).collect();
        assert_eq!(tss, vec![1, 4, 9]);
        assert_eq!(chain.latest().map(|(t, _)| t), Some(ts(9)));
    }
}
