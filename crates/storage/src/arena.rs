//! Arena-backed version chains: a small inline capacity per key, spilling to
//! a per-stripe recycled buffer only for version-heavy keys.
//!
//! The `BTreeMap` chains allocated a node per version and kept allocating as
//! versions were purged and reinstalled. Here a chain stores its newest
//! versions in a fixed inline array — for small values like `u64` that means
//! a committed write touches no allocator at all — and only keys that
//! accumulate more than [`INLINE_VERSIONS`] live versions borrow a spill
//! buffer from the stripe's [`ChainArena`]. When `purge_below` (§6) shrinks a
//! spilled chain back under the inline capacity, the buffer returns to the
//! arena for the next hot key, so a steady-state workload with GC recycles a
//! bounded set of buffers instead of churning the allocator.

use crate::{Version, VersionStats};
use mvtl_common::Timestamp;

/// Versions stored inline before a chain borrows a spill buffer.
pub const INLINE_VERSIONS: usize = 4;

/// Spill buffers a [`ChainArena`] keeps for reuse; beyond this they are
/// simply dropped (the arena is per-stripe, so this bounds pooled memory).
const MAX_POOLED: usize = 64;

/// A per-stripe pool of recycled spill buffers for [`ArenaChain`]s.
#[derive(Debug)]
pub struct ChainArena<V> {
    free: Vec<Vec<(Timestamp, V)>>,
}

impl<V> Default for ChainArena<V> {
    fn default() -> Self {
        ChainArena { free: Vec::new() }
    }
}

impl<V> ChainArena<V> {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        ChainArena::default()
    }

    /// Borrows a cleared spill buffer, reusing a pooled one when available.
    pub fn take(&mut self) -> Vec<(Timestamp, V)> {
        self.free
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(INLINE_VERSIONS * 2))
    }

    /// Returns a spill buffer to the pool (cleared), or drops it when the
    /// pool is full.
    pub fn put(&mut self, mut buffer: Vec<(Timestamp, V)>) {
        if self.free.len() < MAX_POOLED {
            buffer.clear();
            self.free.push(buffer);
        }
    }

    /// Number of buffers currently pooled.
    #[must_use]
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

/// The committed versions of one key, ordered by timestamp, with inline
/// storage for the common case.
///
/// Semantically identical to [`VersionChain`](crate::VersionChain) — the
/// implicit initial version `⊥` at [`Timestamp::ZERO`] is always present, and
/// purged reads report the purge bound — but allocation only happens when a
/// key exceeds [`INLINE_VERSIONS`] live versions, and then from the stripe's
/// [`ChainArena`]. Mutating operations take the arena explicitly: the chain
/// and its arena live under the same stripe latch.
#[derive(Debug)]
pub struct ArenaChain<V> {
    /// Live prefix of length `inline_len`, sorted by timestamp; unused when
    /// `spill` is `Some`.
    slots: [Option<(Timestamp, V)>; INLINE_VERSIONS],
    inline_len: u8,
    /// When present, holds *all* versions (sorted); the inline slots are empty.
    spill: Option<Vec<(Timestamp, V)>>,
    purged_below: Timestamp,
    purged_count: usize,
}

impl<V> Default for ArenaChain<V> {
    fn default() -> Self {
        ArenaChain {
            slots: [None, None, None, None],
            inline_len: 0,
            spill: None,
            purged_below: Timestamp::ZERO,
            purged_count: 0,
        }
    }
}

impl<V: Clone> ArenaChain<V> {
    /// Creates a chain holding only the implicit initial `⊥` version.
    #[must_use]
    pub fn new() -> Self {
        ArenaChain::default()
    }

    /// Number of committed versions currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.spill {
            Some(versions) => versions.len(),
            None => usize::from(self.inline_len),
        }
    }

    /// Whether no committed version exists (only the implicit `⊥`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn entry(&self, index: usize) -> &(Timestamp, V) {
        match &self.spill {
            Some(versions) => &versions[index],
            None => self.slots[index]
                .as_ref()
                .expect("index within live prefix"),
        }
    }

    /// Index of the version at exactly `ts` (`Ok`) or where it would be
    /// inserted (`Err`), over the sorted version sequence.
    fn position(&self, ts: Timestamp) -> Result<usize, usize> {
        let mut lo = 0usize;
        let mut hi = self.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.entry(mid).0.cmp(&ts) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// Installs a committed version at `ts`. As with
    /// [`VersionChain::install`](crate::VersionChain::install), a duplicate
    /// timestamp indicates an engine bug; the newer value wins and the
    /// previous value is returned for the caller to detect it.
    pub fn install(&mut self, ts: Timestamp, value: V, arena: &mut ChainArena<V>) -> Option<V> {
        match self.position(ts) {
            Ok(index) => {
                let slot = match &mut self.spill {
                    Some(versions) => &mut versions[index],
                    None => self.slots[index]
                        .as_mut()
                        .expect("index within live prefix"),
                };
                Some(std::mem::replace(&mut slot.1, value))
            }
            Err(index) => {
                self.insert_at(index, ts, value, arena);
                None
            }
        }
    }

    fn insert_at(&mut self, index: usize, ts: Timestamp, value: V, arena: &mut ChainArena<V>) {
        if let Some(versions) = &mut self.spill {
            versions.insert(index, (ts, value));
            return;
        }
        let len = usize::from(self.inline_len);
        if len < INLINE_VERSIONS {
            // Shift the tail right one slot and drop the new version in.
            let mut i = len;
            while i > index {
                self.slots[i] = self.slots[i - 1].take();
                i -= 1;
            }
            self.slots[index] = Some((ts, value));
            self.inline_len += 1;
            return;
        }
        // Inline capacity exhausted: borrow a spill buffer from the arena.
        let mut versions = arena.take();
        for slot in &mut self.slots {
            versions.extend(slot.take());
        }
        versions.insert(index, (ts, value));
        self.inline_len = 0;
        self.spill = Some(versions);
    }

    /// The version with the largest timestamp strictly before `ts`; see
    /// [`VersionChain::latest_before`](crate::VersionChain::latest_before)
    /// for the `⊥` and purged-read contract.
    pub fn latest_before(&self, ts: Timestamp) -> Result<(Timestamp, Option<V>), Timestamp> {
        let below = match self.position(ts) {
            Ok(index) | Err(index) => index,
        };
        if below == 0 {
            if self.purged_count > 0 && ts <= self.purged_below {
                // Versions below purged_below were discarded; a read below
                // that bound can no longer be served correctly.
                Err(self.purged_below)
            } else {
                Ok((Timestamp::ZERO, None))
            }
        } else {
            let (t, v) = self.entry(below - 1);
            Ok((*t, Some(v.clone())))
        }
    }

    /// The value committed exactly at `ts`, if any.
    #[must_use]
    pub fn at(&self, ts: Timestamp) -> Option<&V> {
        match self.position(ts) {
            Ok(index) => Some(&self.entry(index).1),
            Err(_) => None,
        }
    }

    /// The largest committed timestamp, if any version exists.
    #[must_use]
    pub fn latest(&self) -> Option<(Timestamp, &V)> {
        match self.len() {
            0 => None,
            n => {
                let (t, v) = self.entry(n - 1);
                Some((*t, v))
            }
        }
    }

    /// Purges versions with timestamp below `bound`, keeping the most recent
    /// version below the bound (§6). A spilled chain that shrinks back under
    /// the inline capacity returns its buffer to the arena. Returns how many
    /// versions were removed.
    pub fn purge_below(&mut self, bound: Timestamp, arena: &mut ChainArena<V>) -> usize {
        let first_kept = match self.position(bound) {
            // `position` finds the first version >= bound; everything before
            // it is below the bound, and the last of those is retained.
            Ok(index) | Err(index) => index.saturating_sub(1),
        };
        let removed = first_kept;
        if removed == 0 {
            if bound > self.purged_below {
                self.purged_below = bound;
            }
            return 0;
        }
        match &mut self.spill {
            Some(versions) => {
                versions.drain(..removed);
                if versions.len() <= INLINE_VERSIONS {
                    let mut buffer = self.spill.take().expect("spill just matched");
                    for (i, entry) in buffer.drain(..).enumerate() {
                        self.slots[i] = Some(entry);
                        self.inline_len = (i + 1) as u8;
                    }
                    arena.put(buffer);
                }
            }
            None => {
                let len = usize::from(self.inline_len);
                for i in 0..len - removed {
                    self.slots[i] = self.slots[i + removed].take();
                }
                for slot in self.slots.iter_mut().take(len).skip(len - removed) {
                    *slot = None;
                }
                self.inline_len -= removed as u8;
            }
        }
        if bound > self.purged_below {
            self.purged_below = bound;
        }
        self.purged_count += removed;
        removed
    }

    /// Releases the chain's spill buffer (if any) back to the arena; called
    /// when the owning cell is reclaimed.
    pub fn release(&mut self, arena: &mut ChainArena<V>) {
        if let Some(buffer) = self.spill.take() {
            self.inline_len = 0;
            arena.put(buffer);
        }
    }

    /// Iterates over the committed versions in timestamp order.
    pub fn iter(&self) -> impl Iterator<Item = Version<V>> + '_ {
        (0..self.len()).map(move |i| {
            let (t, v) = self.entry(i);
            Version {
                timestamp: *t,
                value: v.clone(),
            }
        })
    }

    /// The purge bound below which old versions have been discarded.
    #[must_use]
    pub fn purged_below(&self) -> Timestamp {
        self.purged_below
    }

    /// Statistics for this chain.
    #[must_use]
    pub fn stats(&self) -> VersionStats {
        VersionStats {
            versions: self.len(),
            purged: self.purged_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: u64) -> Timestamp {
        Timestamp::at(v)
    }

    #[test]
    fn mirrors_version_chain_semantics_inline() {
        let mut arena = ChainArena::new();
        let mut chain = ArenaChain::new();
        chain.install(ts(2), "a", &mut arena);
        chain.install(ts(9), "b", &mut arena);
        assert_eq!(chain.latest_before(ts(6)), Ok((ts(2), Some("a"))));
        assert_eq!(chain.latest_before(ts(2)), Ok((Timestamp::ZERO, None)));
        assert_eq!(chain.latest_before(ts(10)), Ok((ts(9), Some("b"))));
        assert_eq!(chain.at(ts(9)), Some(&"b"));
        assert_eq!(chain.latest().map(|(t, _)| t), Some(ts(9)));
        assert_eq!(arena.pooled(), 0, "two versions stay inline");
    }

    #[test]
    fn spills_past_inline_capacity_and_returns_buffer_on_purge() {
        let mut arena = ChainArena::new();
        let mut chain = ArenaChain::new();
        for v in 1..=8u64 {
            chain.install(ts(v * 10), v, &mut arena);
        }
        assert_eq!(chain.len(), 8);
        assert_eq!(chain.latest_before(ts(45)), Ok((ts(40), Some(4))));
        // Purge down to two live versions: the spill buffer must come back.
        let removed = chain.purge_below(ts(75), &mut arena);
        assert_eq!(removed, 6);
        assert_eq!(chain.len(), 2);
        assert_eq!(arena.pooled(), 1);
        assert_eq!(chain.latest_before(ts(75)), Ok((ts(70), Some(7))));
        assert_eq!(chain.latest_before(ts(50)), Err(ts(75)));
        // The recycled buffer serves the next spill without a fresh allocation.
        for v in 9..=16u64 {
            chain.install(ts(v * 10), v, &mut arena);
        }
        assert_eq!(arena.pooled(), 0);
        assert_eq!(chain.len(), 10);
    }

    #[test]
    fn duplicate_install_returns_previous() {
        let mut arena = ChainArena::new();
        let mut chain = ArenaChain::new();
        assert_eq!(chain.install(ts(3), 1u64, &mut arena), None);
        assert_eq!(chain.install(ts(3), 2u64, &mut arena), Some(1));
        assert_eq!(chain.at(ts(3)), Some(&2));
        assert_eq!(chain.len(), 1);
    }

    #[test]
    fn out_of_order_installs_stay_sorted() {
        let mut arena = ChainArena::new();
        let mut chain = ArenaChain::new();
        for v in [9u64, 1, 4, 7, 2, 8, 3] {
            chain.install(ts(v), v, &mut arena);
        }
        let order: Vec<u64> = chain.iter().map(|v| v.timestamp.value).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 7, 8, 9]);
    }

    #[test]
    fn release_recycles_spill_buffer() {
        let mut arena = ChainArena::new();
        let mut chain = ArenaChain::new();
        for v in 1..=6u64 {
            chain.install(ts(v), v, &mut arena);
        }
        chain.release(&mut arena);
        assert_eq!(arena.pooled(), 1);
        assert!(chain.is_empty());
    }

    #[test]
    fn purge_on_empty_chain_only_moves_bound() {
        let mut arena = ChainArena::new();
        let mut chain: ArenaChain<u64> = ArenaChain::new();
        assert_eq!(chain.purge_below(ts(15), &mut arena), 0);
        assert_eq!(chain.latest_before(ts(7)), Ok((Timestamp::ZERO, None)));
        assert_eq!(chain.purged_below(), ts(15));
    }
}
