//! Statistics about stored versions, used by the state-size experiment (Fig. 6).

/// Counters describing the version state of a key (or, summed, a whole store).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VersionStats {
    /// Number of committed versions currently stored (excluding the implicit
    /// initial `⊥` version).
    pub versions: usize,
    /// Number of versions removed by purging since the chain was created.
    pub purged: usize,
}

impl VersionStats {
    /// Component-wise sum, for aggregating across keys.
    #[must_use]
    pub fn merge(self, other: VersionStats) -> VersionStats {
        VersionStats {
            versions: self.versions + other.versions,
            purged: self.purged + other.purged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields() {
        let a = VersionStats {
            versions: 2,
            purged: 1,
        };
        let b = VersionStats {
            versions: 5,
            purged: 0,
        };
        assert_eq!(
            a.merge(b),
            VersionStats {
                versions: 7,
                purged: 1
            }
        );
    }
}
