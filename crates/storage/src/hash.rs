//! The hot-path key hash.
// lint: hot-path
//!
//! The store previously routed keys through `std`'s `DefaultHasher` (SipHash),
//! which dominates the cost of a map probe for an 8-byte key. Keys here are
//! plain `u64`s chosen by workloads, not attacker-controlled input, so a
//! multiplicative (Fibonacci) hash with one xor-shift finalizer is enough to
//! spread sequential and strided key patterns across stripes and slots, at the
//! cost of one multiply.

use mvtl_common::Key;

/// 2^64 / φ, the usual Fibonacci-hashing multiplier.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// Hashes a key to a full 64-bit value. Stripe routing uses the top bits,
/// slot probing the bottom bits; the xor-shift folds the (strong) high bits
/// of the product into the low half so both ends are usable.
#[must_use]
#[inline]
pub fn key_hash(key: Key) -> u64 {
    let h = key.0.wrapping_mul(FIB);
    h ^ (h >> 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_keys_spread_over_stripes_and_slots() {
        // 256 sequential keys into 8 stripes (top bits) and 64 slots
        // (bottom bits): no bucket may collect more than 4x its fair share.
        let mut stripes = [0u32; 8];
        let mut slots = [0u32; 64];
        for k in 0..256u64 {
            let h = key_hash(Key(k));
            stripes[(h >> 61) as usize] += 1;
            slots[(h & 63) as usize] += 1;
        }
        assert!(stripes.iter().all(|&n| n <= 128), "stripes {stripes:?}");
        assert!(slots.iter().all(|&n| n <= 16), "slots {slots:?}");
    }

    #[test]
    fn hash_is_deterministic_and_distinguishes_keys() {
        assert_eq!(key_hash(Key(7)), key_hash(Key(7)));
        assert_ne!(key_hash(Key(7)), key_hash(Key(8)));
    }
}
