//! # mvtl-storage
//!
//! The multiversion value store `Values[k, t]` of §4.1, with the version
//! purging of §6.
//!
//! Every key holds a chain of committed versions ordered by timestamp. The
//! initial version at [`Timestamp::ZERO`](mvtl_common::Timestamp::ZERO) is the
//! special value `⊥` (represented here as "no value"), and committed writes add
//! versions at their commit timestamp. Multiversion reads ask for "the version
//! with the largest timestamp before `t`" — [`VersionChain::latest_before`].
//!
//! Like [`mvtl_locks::KeyLockState`](../mvtl_locks/struct.KeyLockState.html),
//! the chain is a plain data structure with no internal synchronization; the
//! engines guard it with the same per-key latch as the lock state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod chain;
pub mod hash;
mod smap;
mod stats;
mod stripe;

pub use arena::{ArenaChain, ChainArena, INLINE_VERSIONS};
pub use chain::{Version, VersionChain};
pub use smap::StripeMap;
pub use stats::VersionStats;
pub use stripe::{Stripe, StripedTable};
