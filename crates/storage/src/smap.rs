//! An open-addressed key → state map, the storage inside one stripe.
//!
//! Replaces the `HashMap<Key, Arc<KeyCell>>` shards: entries live *inline* in
//! the probe table (no per-key `Arc`, no per-read refcount traffic), lookups
//! are one multiplicative hash plus a short linear probe, and deletion uses
//! backward shifting so the table never accumulates tombstones. The map is a
//! plain data structure with no internal synchronization — the owning stripe
//! guards it with one latch (see [`StripedTable`](crate::StripedTable)).

use crate::hash::key_hash;
use mvtl_common::Key;

/// Initial slot count of an empty map; must be a power of two.
const INITIAL_SLOTS: usize = 16;

/// An open-addressed map from [`Key`] to per-key state `S`.
///
/// Linear probing over a power-of-two slot array, growing at ~3/4 load. The
/// probe sequence uses the low bits of [`key_hash`]; stripe selection uses the
/// high bits, so the two levels of routing stay independent.
#[derive(Debug)]
pub struct StripeMap<S> {
    slots: Vec<Option<(Key, S)>>,
    len: usize,
}

impl<S> Default for StripeMap<S> {
    fn default() -> Self {
        StripeMap::new()
    }
}

impl<S> StripeMap<S> {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        let mut slots = Vec::new();
        slots.resize_with(INITIAL_SLOTS, || None);
        StripeMap { slots, len: 0 }
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    #[inline]
    fn home(&self, key: Key) -> usize {
        (key_hash(key) as usize) & self.mask()
    }

    /// The slot index holding `key`, if present.
    #[inline]
    fn probe(&self, key: Key) -> Option<usize> {
        let mask = self.mask();
        let mut i = self.home(key);
        loop {
            match &self.slots[i] {
                None => return None,
                Some((k, _)) if *k == key => return Some(i),
                Some(_) => i = (i + 1) & mask,
            }
        }
    }

    /// Shared access to the state of `key`.
    #[must_use]
    pub fn get(&self, key: Key) -> Option<&S> {
        self.probe(key)
            .map(|i| &self.slots[i].as_ref().expect("probed slot is live").1)
    }

    /// Exclusive access to the state of `key`.
    pub fn get_mut(&mut self, key: Key) -> Option<&mut S> {
        self.probe(key)
            .map(|i| &mut self.slots[i].as_mut().expect("probed slot is live").1)
    }

    /// Exclusive access to the state of `key`, inserting `make()` first when
    /// the key is absent.
    pub fn get_or_insert_with(&mut self, key: Key, make: impl FnOnce() -> S) -> &mut S {
        if self.probe(key).is_none() {
            self.grow_if_needed();
            let mask = self.mask();
            let mut i = self.home(key);
            while self.slots[i].is_some() {
                i = (i + 1) & mask;
            }
            self.slots[i] = Some((key, make()));
            self.len += 1;
        }
        let i = self.probe(key).expect("entry just ensured");
        &mut self.slots[i].as_mut().expect("probed slot is live").1
    }

    /// Removes and returns the state of `key`. Backward-shifts the following
    /// probe run so later lookups never cross a stale hole.
    pub fn remove(&mut self, key: Key) -> Option<S> {
        let mut hole = self.probe(key)?;
        let (_, state) = self.slots[hole].take().expect("probed slot is live");
        self.len -= 1;
        let mask = self.mask();
        let mut i = hole;
        loop {
            i = (i + 1) & mask;
            let Some((k, _)) = &self.slots[i] else { break };
            let home = self.home(*k);
            // The entry at `i` may fill the hole only if its home position
            // does not lie strictly inside the cyclic interval (hole, i].
            if (i.wrapping_sub(home) & mask) >= (i.wrapping_sub(hole) & mask) {
                self.slots[hole] = self.slots[i].take();
                hole = i;
            }
        }
        Some(state)
    }

    /// Iterates over `(key, &state)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Key, &S)> {
        self.slots
            .iter()
            .filter_map(|slot| slot.as_ref().map(|(k, s)| (*k, s)))
    }

    /// Iterates over `(key, &mut state)` in unspecified order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Key, &mut S)> {
        self.slots
            .iter_mut()
            .filter_map(|slot| slot.as_mut().map(|(k, s)| (*k, s)))
    }

    /// Keeps only the entries for which `keep` returns true, handing each
    /// removed state to the caller via the return of `keep` being false.
    pub fn retain(&mut self, mut keep: impl FnMut(Key, &mut S) -> bool) {
        // Collect doomed keys first: backward-shift deletion moves entries,
        // so removing while iterating slot-by-slot would skip entries.
        let doomed: Vec<Key> = self
            .slots
            .iter_mut()
            .filter_map(|slot| match slot {
                Some((k, s)) => {
                    if keep(*k, s) {
                        None
                    } else {
                        Some(*k)
                    }
                }
                None => None,
            })
            .collect();
        for key in doomed {
            self.remove(key);
        }
    }

    fn grow_if_needed(&mut self) {
        if (self.len + 1) * 4 < self.slots.len() * 3 {
            return;
        }
        let new_cap = self.slots.len() * 2;
        let mut new_slots: Vec<Option<(Key, S)>> = Vec::new();
        new_slots.resize_with(new_cap, || None);
        let old = std::mem::replace(&mut self.slots, new_slots);
        for (key, state) in old.into_iter().flatten() {
            let mask = self.mask();
            let mut i = (key_hash(key) as usize) & mask;
            while self.slots[i].is_some() {
                i = (i + 1) & mask;
            }
            self.slots[i] = Some((key, state));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut map: StripeMap<u64> = StripeMap::new();
        for k in 0..200u64 {
            *map.get_or_insert_with(Key(k), || 0) = k * 10;
        }
        assert_eq!(map.len(), 200);
        for k in 0..200u64 {
            assert_eq!(map.get(Key(k)), Some(&(k * 10)));
        }
        assert_eq!(map.get(Key(999)), None);
        for k in (0..200u64).step_by(2) {
            assert_eq!(map.remove(Key(k)), Some(k * 10));
        }
        assert_eq!(map.len(), 100);
        for k in 0..200u64 {
            if k % 2 == 0 {
                assert_eq!(map.get(Key(k)), None);
            } else {
                assert_eq!(map.get(Key(k)), Some(&(k * 10)), "key {k}");
            }
        }
    }

    #[test]
    fn get_or_insert_returns_existing_entry() {
        let mut map: StripeMap<String> = StripeMap::new();
        map.get_or_insert_with(Key(1), || "first".to_string());
        let v = map.get_or_insert_with(Key(1), || "second".to_string());
        assert_eq!(v, "first");
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn backward_shift_keeps_colliding_runs_reachable() {
        // Craft keys that all land in a short probe run, then delete from the
        // middle: the survivors must all remain findable.
        let mut map: StripeMap<u64> = StripeMap::new();
        let colliders: Vec<Key> = (0..40_000u64)
            .map(Key)
            .filter(|k| (key_hash(*k) as usize) & (INITIAL_SLOTS - 1) == 3)
            .take(6)
            .collect();
        assert!(colliders.len() >= 4, "need colliding keys for this test");
        for (i, k) in colliders.iter().enumerate() {
            *map.get_or_insert_with(*k, || 0) = i as u64;
        }
        map.remove(colliders[1]);
        map.remove(colliders[0]);
        for (i, k) in colliders.iter().enumerate().skip(2) {
            assert_eq!(map.get(*k), Some(&(i as u64)), "collider {i}");
        }
    }

    #[test]
    fn retain_drops_and_keeps() {
        let mut map: StripeMap<u64> = StripeMap::new();
        for k in 0..50u64 {
            *map.get_or_insert_with(Key(k), || 0) = k;
        }
        map.retain(|k, _| k.0 % 3 == 0);
        assert_eq!(map.len(), 17);
        assert!(map.iter().all(|(k, _)| k.0 % 3 == 0));
        assert_eq!(map.get(Key(3)), Some(&3));
        assert_eq!(map.get(Key(4)), None);
    }

    #[test]
    fn iter_mut_visits_every_entry_once() {
        let mut map: StripeMap<u64> = StripeMap::new();
        for k in 0..64u64 {
            *map.get_or_insert_with(Key(k), || 0) = 1;
        }
        let mut total = 0u64;
        for (_, v) in map.iter_mut() {
            total += *v;
            *v += 1;
        }
        assert_eq!(total, 64);
        assert!(map.iter().all(|(_, v)| *v == 2));
    }
}
