//! Striped per-key state: a fixed array of latches, each guarding one
//! [`StripeMap`](crate::StripeMap) (or any other per-stripe aggregate).
//!
//! This replaces the `Vec<RwLock<HashMap<Key, Arc<Cell>>>>` shard layout: a
//! key operation is route → one mutex → inline entry, instead of
//! hash → shard rwlock → map probe → `Arc` clone → per-cell mutex. Waiters
//! block on the stripe's [`Condvar`] and re-probe after waking, because the
//! stripe map may have rehashed or dropped entries while they slept.
//!
//! Lock-site naming: `Mutex::named` requires literal site names and ranks
//! (the `mvtl-lint` rank table is machine-checked), so [`StripedTable::build`]
//! takes a factory closure and each engine constructs its own named latches —
//! the table itself never names a site.

use mvtl_common::Key;
use parking_lot::{Condvar, Mutex};

use crate::hash::key_hash;

/// One stripe: the latch over the per-stripe state plus the condition
/// variable every lock-waiter on the stripe's keys blocks on.
#[derive(Debug)]
pub struct Stripe<T> {
    /// The stripe's state (typically a [`StripeMap`](crate::StripeMap),
    /// possibly bundled with a per-stripe arena), under one latch.
    pub data: Mutex<T>,
    /// Signalled whenever lock state under this stripe changes in a way that
    /// could unblock a waiter. Waiters must re-probe their key after waking.
    pub changed: Condvar,
}

impl<T> Stripe<T> {
    /// Wakes every transaction waiting on a key of this stripe.
    pub fn notify(&self) {
        self.changed.notify_all();
    }
}

/// A power-of-two array of [`Stripe`]s with high-bit hash routing.
#[derive(Debug)]
pub struct StripedTable<T> {
    stripes: Vec<Stripe<T>>,
    shift: u32,
}

impl<T> StripedTable<T> {
    /// Builds a table of `count` stripes (rounded up to a power of two,
    /// minimum 1). `latch` wraps each stripe's initial state in the engine's
    /// named mutex — the site literal lives at the engine's call site.
    pub fn build(count: usize, mut latch: impl FnMut(T) -> Mutex<T>) -> Self
    where
        T: Default,
    {
        let count = count.max(1).next_power_of_two();
        let mut stripes = Vec::with_capacity(count);
        for _ in 0..count {
            stripes.push(Stripe {
                data: latch(T::default()),
                changed: Condvar::new(),
            });
        }
        StripedTable {
            stripes,
            shift: 64 - count.trailing_zeros(),
        }
    }

    /// Number of stripes.
    #[must_use]
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// The stripe index `key` routes to.
    #[must_use]
    #[inline]
    pub fn stripe_index(&self, key: Key) -> usize {
        if self.stripes.len() == 1 {
            return 0;
        }
        (key_hash(key) >> self.shift) as usize
    }

    /// The stripe `key` routes to.
    #[must_use]
    #[inline]
    pub fn stripe_for(&self, key: Key) -> &Stripe<T> {
        &self.stripes[self.stripe_index(key)]
    }

    /// All stripes, for whole-table sweeps (GC, stats, recovery).
    #[must_use]
    pub fn stripes(&self) -> &[Stripe<T>] {
        &self.stripes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_and_in_range() {
        let table: StripedTable<u64> = StripedTable::build(8, Mutex::new);
        assert_eq!(table.stripe_count(), 8);
        for k in 0..1_000u64 {
            let i = table.stripe_index(Key(k));
            assert!(i < 8);
            assert_eq!(i, table.stripe_index(Key(k)));
        }
    }

    #[test]
    fn count_rounds_up_to_power_of_two() {
        let table: StripedTable<u64> = StripedTable::build(5, Mutex::new);
        assert_eq!(table.stripe_count(), 8);
        let one: StripedTable<u64> = StripedTable::build(0, Mutex::new);
        assert_eq!(one.stripe_count(), 1);
        assert_eq!(one.stripe_index(Key(u64::MAX)), 0);
    }

    #[test]
    fn stripes_are_independent_latches() {
        let table: StripedTable<u64> = StripedTable::build(4, Mutex::new);
        let mut guards = Vec::new();
        for stripe in table.stripes() {
            *stripe.data.lock() += 1;
        }
        // Locking one stripe leaves the others lockable.
        guards.push(table.stripes()[0].data.lock());
        assert!(table.stripes()[1].data.try_lock().is_some());
        drop(guards);
    }
}
