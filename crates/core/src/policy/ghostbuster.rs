//! MVTL-Ghostbuster (Algorithm 10): MVTL-TO plus garbage collection, which
//! removes ghost aborts.

use crate::policy::{LockingPolicy, PolicyCtx};
use crate::txn::TxState;
use mvtl_common::{AbortReason, Key, Timestamp, TsRange, TsSet, TxError};

/// The MVTL-Ghostbuster policy (§5.5, Algorithm 10, Theorem 7).
///
/// Identical to [`ToPolicy`](crate::policy::ToPolicy) except that garbage
/// collection always runs when a transaction ends (commit *or* abort), so an
/// aborted transaction "only holds any locks while it is executing"; therefore
/// a write can never conflict with a transaction that already aborted, and
/// ghost aborts disappear.
///
/// A second difference from MVTL-TO, per Algorithm 10 line 15: commit-time
/// write locking *waits* for unfrozen conflicting locks instead of giving up
/// immediately.
#[derive(Debug, Clone, Copy, Default)]
pub struct GhostbusterPolicy;

impl GhostbusterPolicy {
    /// Creates the MVTL-Ghostbuster policy.
    #[must_use]
    pub fn new() -> Self {
        GhostbusterPolicy
    }
}

impl LockingPolicy for GhostbusterPolicy {
    fn init(&self, ctx: &dyn PolicyCtx, tx: &mut TxState) {
        let value = ctx.clock_value(tx, tx.process);
        let ts = Timestamp::new(value, tx.process.0);
        tx.start_ts = Some(ts);
        tx.chosen_ts = Some(ts);
        tx.ts_set = TsSet::from_point(ts);
    }

    fn write_locks(
        &self,
        _ctx: &dyn PolicyCtx,
        _tx: &mut TxState,
        _key: Key,
    ) -> Result<(), TxError> {
        Ok(())
    }

    fn read_locks(
        &self,
        ctx: &dyn PolicyCtx,
        tx: &mut TxState,
        key: Key,
    ) -> Result<Timestamp, TxError> {
        let ts = tx.start_ts.expect("init sets the start timestamp");
        let grant = ctx.acquire_read_interval(tx, key, ts, ts, true)?;
        Ok(grant.version)
    }

    fn commit_locks(&self, ctx: &dyn PolicyCtx, tx: &mut TxState) -> Result<(), TxError> {
        let ts = tx.start_ts.expect("init sets the start timestamp");
        let write_keys = tx.write_keys.clone();
        for key in write_keys {
            // Waits for unfrozen conflicting locks (Algorithm 10 line 15); a
            // frozen conflicting read lock can never go away, so a missing
            // grant after waiting means the write must be rejected.
            let granted = ctx.acquire_write_range(tx, key, TsRange::point(ts), true)?;
            if !granted.contains(ts) {
                ctx.release_unfrozen_write_locks(tx);
                tx.chosen_ts = None;
                return Err(TxError::aborted(AbortReason::WriteConflict { key }));
            }
        }
        Ok(())
    }

    fn commit_ts(&self, tx: &TxState, candidates: &TsSet) -> Option<Timestamp> {
        tx.chosen_ts.filter(|t| candidates.contains(*t))
    }

    fn commit_gc(&self, _tx: &TxState) -> bool {
        true
    }

    fn release_read_locks_on_abort(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "mvtl-ghostbuster"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ToPolicy;
    use crate::{MvtlConfig, MvtlStore};
    use mvtl_clock::{ClockSource, ManualClock};
    use mvtl_common::{ProcessId, TransactionalKV};
    use std::sync::Arc;
    use std::time::Duration;

    /// Runs the ghost-abort schedule of §5.5 against an engine and reports
    /// whether T1 (the last writer) aborted.
    ///
    /// Schedule: T3 reads X and commits; T2 reads Y, writes X and aborts
    /// (because of T3's read); then T1 writes Y and tries to commit. Under
    /// MVTO+/MVTL-TO, T1 aborts even though its only conflict is with the
    /// already-aborted T2 — a ghost abort.
    fn ghost_schedule<P: crate::policy::LockingPolicy>(policy: P) -> bool {
        let clock = Arc::new(ManualClock::new());
        clock.script(ProcessId(1), vec![1]);
        clock.script(ProcessId(2), vec![2]);
        clock.script(ProcessId(3), vec![3]);
        let store: MvtlStore<u64, P> = MvtlStore::new(
            policy,
            Arc::clone(&clock) as Arc<dyn ClockSource>,
            MvtlConfig::default().with_lock_wait_timeout(Duration::from_millis(20)),
        );
        let x = Key(1);
        let y = Key(2);

        let mut t1 = store.begin(ProcessId(1));
        let mut t2 = store.begin(ProcessId(2));
        let mut t3 = store.begin(ProcessId(3));

        // T3: R(X) C
        let _ = store.read(&mut t3, x).unwrap();
        store.commit(t3).unwrap();

        // T2: R(Y) W(X) then abort at commit because T3 read X at timestamp 3.
        let _ = store.read(&mut t2, y).unwrap();
        store.write(&mut t2, x, 20).unwrap();
        assert!(store.commit(t2).is_err(), "T2 must abort in this schedule");

        // T1: W(Y) C?
        store.write(&mut t1, y, 10).unwrap();
        store.commit(t1).is_err()
    }

    #[test]
    fn mvtl_to_suffers_ghost_aborts() {
        assert!(
            ghost_schedule(ToPolicy::new()),
            "MVTL-TO should ghost-abort T1"
        );
    }

    #[test]
    fn ghostbuster_avoids_ghost_aborts() {
        assert!(
            !ghost_schedule(GhostbusterPolicy::new()),
            "MVTL-Ghostbuster must commit T1"
        );
    }

    #[test]
    fn basic_read_write_cycle() {
        let store: MvtlStore<u64, GhostbusterPolicy> = MvtlStore::new(
            GhostbusterPolicy::new(),
            Arc::new(mvtl_clock::GlobalClock::new()),
            MvtlConfig::default(),
        );
        let mut tx = store.begin(ProcessId(0));
        store.write(&mut tx, Key(9), 1).unwrap();
        store.commit(tx).unwrap();
        let mut tx = store.begin(ProcessId(1));
        assert_eq!(store.read(&mut tx, Key(9)).unwrap(), Some(1));
        store.commit(tx).unwrap();
        // GC on commit freezes the read locks, so lock entries are all frozen.
        let stats = store.stats();
        assert_eq!(stats.lock_entries, stats.frozen_lock_entries);
    }
}
