//! MVTIL: the interval-locking variant evaluated in §8 of the paper.

use crate::policy::{LockingPolicy, PolicyCtx};
use crate::txn::TxState;
use mvtl_common::{AbortReason, Key, Timestamp, TsRange, TsSet, TxError};

/// Which commit timestamp MVTIL picks from its remaining interval (§8:
/// "MVTIL-early, which at commit time picks the smallest timestamp in I to
/// commit, and MVTIL-late, which picks the largest").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitPick {
    /// Pick the smallest locked timestamp.
    Early,
    /// Pick the largest locked timestamp.
    Late,
}

/// The MVTIL policy (§8.1): a practical ε-clock variant that assumes nothing
/// about clock synchronization.
///
/// A transaction associates the interval `I = [t, t+Δ]` with itself (Δ is a
/// small constant; the paper uses 5 ms). When accessing a key it tries to lock
/// the timestamps in `I` **without waiting**; if only a sub-interval could be
/// locked, `I` shrinks to that sub-interval, reducing the amount of locking on
/// subsequent keys. If `I` becomes empty the transaction aborts (the client may
/// then retry with a fresh interval). Commit picks the smallest
/// ([`CommitPick::Early`]) or largest ([`CommitPick::Late`]) remaining locked
/// timestamp and garbage collects.
#[derive(Debug, Clone, Copy)]
pub struct MvtilPolicy {
    delta: u64,
    pick: CommitPick,
}

impl MvtilPolicy {
    /// Creates an MVTIL policy with interval width Δ and the given commit pick.
    #[must_use]
    pub fn new(delta: u64, pick: CommitPick) -> Self {
        MvtilPolicy { delta, pick }
    }

    /// MVTIL-early with interval width Δ.
    #[must_use]
    pub fn early(delta: u64) -> Self {
        MvtilPolicy::new(delta, CommitPick::Early)
    }

    /// MVTIL-late with interval width Δ.
    #[must_use]
    pub fn late(delta: u64) -> Self {
        MvtilPolicy::new(delta, CommitPick::Late)
    }

    /// The interval width Δ.
    #[must_use]
    pub fn delta(&self) -> u64 {
        self.delta
    }

    /// The commit-timestamp choice.
    #[must_use]
    pub fn pick(&self) -> CommitPick {
        self.pick
    }
}

impl LockingPolicy for MvtilPolicy {
    fn init(&self, ctx: &dyn PolicyCtx, tx: &mut TxState) {
        let now = ctx.clock_value(tx, tx.process).max(1);
        tx.start_ts = Some(Timestamp::new(now, tx.process.0));
        let interval = TsRange::new(
            Timestamp::new(now, 0),
            Timestamp::new(now.saturating_add(self.delta), u32::MAX),
        );
        tx.ts_set = TsSet::from_range(interval);
    }

    fn write_locks(&self, ctx: &dyn PolicyCtx, tx: &mut TxState, key: Key) -> Result<(), TxError> {
        if tx.ts_set.is_empty() {
            return Err(TxError::aborted(AbortReason::IntervalExhausted { key }));
        }
        // Iterate by index: `acquire_write_range` updates the lock mirror but
        // never touches `ts_set`, so the snapshot-free walk stays consistent
        // and avoids cloning the range list on every write.
        let mut acquired = TsSet::new();
        let mut i = 0;
        while let Some(range) = tx.ts_set.ranges().get(i).copied() {
            let granted = ctx.acquire_write_range(tx, key, range, false)?;
            acquired = acquired.union(&granted);
            i += 1;
        }
        tx.ts_set = tx.ts_set.intersection(&acquired);
        if tx.ts_set.is_empty() {
            return Err(TxError::aborted(AbortReason::IntervalExhausted { key }));
        }
        Ok(())
    }

    fn read_locks(
        &self,
        ctx: &dyn PolicyCtx,
        tx: &mut TxState,
        key: Key,
    ) -> Result<Timestamp, TxError> {
        let Some(upper) = tx.ts_set.max() else {
            return Err(TxError::aborted(AbortReason::IntervalExhausted { key }));
        };
        let grant = ctx.acquire_read_interval(tx, key, upper, upper, false)?;
        tx.ts_set = tx.ts_set.intersection(&grant.granted);
        if tx.ts_set.is_empty() {
            return Err(TxError::aborted(AbortReason::IntervalExhausted { key }));
        }
        Ok(grant.version)
    }

    fn commit_locks(&self, _ctx: &dyn PolicyCtx, _tx: &mut TxState) -> Result<(), TxError> {
        Ok(())
    }

    fn commit_ts(&self, tx: &TxState, candidates: &TsSet) -> Option<Timestamp> {
        let viable = candidates.intersection(&tx.ts_set);
        match self.pick {
            CommitPick::Early => viable.min(),
            CommitPick::Late => viable.max(),
        }
    }

    fn prepared_interval(&self, tx: &TxState, candidates: &TsSet) -> TsSet {
        // Freeze only the remaining interval I: a coordinator must not commit
        // an MVTIL transaction at a timestamp the interval has shrunk past.
        candidates.intersection(&tx.ts_set)
    }

    fn commit_gc(&self, _tx: &TxState) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        match self.pick {
            CommitPick::Early => "mvtil-early",
            CommitPick::Late => "mvtil-late",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MvtlConfig, MvtlStore};
    use mvtl_clock::{ClockSource, GlobalClock, ManualClock};
    use mvtl_common::{ProcessId, TransactionalKV};
    use std::sync::Arc;

    fn store(pick: CommitPick) -> MvtlStore<u64, MvtilPolicy> {
        MvtlStore::new(
            MvtilPolicy::new(100, pick),
            Arc::new(GlobalClock::starting_at(10)),
            MvtlConfig::default(),
        )
    }

    #[test]
    fn early_and_late_pick_opposite_ends() {
        for (pick, is_early) in [(CommitPick::Early, true), (CommitPick::Late, false)] {
            let s = store(pick);
            let mut tx = s.begin(ProcessId(0));
            s.write(&mut tx, Key(1), 1).unwrap();
            let start = tx.state().start_ts.unwrap().value;
            let cts = s.commit(tx).unwrap().commit_ts.unwrap();
            if is_early {
                assert!(cts.value <= start, "early must pick the bottom of I");
            } else {
                assert!(
                    cts.value >= start + 100,
                    "late must pick the top of I (got {cts:?})"
                );
            }
        }
    }

    #[test]
    fn interval_shrinks_on_partial_conflicts() {
        // Two concurrent writers with overlapping intervals on the same key
        // both commit: each locks a disjoint part of the timeline.
        let clock = Arc::new(ManualClock::new());
        clock.script(ProcessId(0), vec![100]);
        clock.script(ProcessId(1), vec![150]);
        let s: MvtlStore<u64, MvtilPolicy> = MvtlStore::new(
            MvtilPolicy::early(100),
            clock as Arc<dyn ClockSource>,
            MvtlConfig::default(),
        );
        let mut a = s.begin(ProcessId(0));
        let mut b = s.begin(ProcessId(1));
        s.write(&mut a, Key(1), 10).unwrap();
        s.write(&mut b, Key(1), 20).unwrap();
        let a_info = s.commit(a).unwrap();
        let b_info = s.commit(b).unwrap();
        assert_ne!(a_info.commit_ts, b_info.commit_ts);
    }

    #[test]
    fn conflicting_read_then_write_interval_exhausts() {
        // A committed reader freezes read locks over a writer's whole interval.
        let clock = Arc::new(ManualClock::new());
        clock.script(ProcessId(0), vec![200]); // reader, above the writer
        clock.script(ProcessId(1), vec![100]); // writer, entirely below
        let s: MvtlStore<u64, MvtilPolicy> = MvtlStore::new(
            MvtilPolicy::late(50),
            clock as Arc<dyn ClockSource>,
            MvtlConfig::default(),
        );
        let mut reader = s.begin(ProcessId(0));
        let _ = s.read(&mut reader, Key(5)).unwrap();
        s.commit(reader).unwrap();

        let mut writer = s.begin(ProcessId(1));
        let err = s.write(&mut writer, Key(5), 1).unwrap_err();
        assert_eq!(
            err.abort_reason(),
            Some(&AbortReason::IntervalExhausted { key: Key(5) })
        );
    }

    #[test]
    fn read_write_cycle_roundtrips_values() {
        let s = store(CommitPick::Early);
        let mut w = s.begin(ProcessId(0));
        s.write(&mut w, Key(9), 123).unwrap();
        s.commit(w).unwrap();
        let mut r = s.begin(ProcessId(1));
        assert_eq!(s.read(&mut r, Key(9)).unwrap(), Some(123));
        s.commit(r).unwrap();
    }

    #[test]
    fn reads_never_wait_for_uncommitted_writers() {
        // A writer holds unfrozen write locks; a non-waiting MVTIL reader with
        // an overlapping interval shrinks below them or aborts, but never
        // blocks. Here the reader's interval lies below the writer's locks, so
        // it can still commit.
        let clock = Arc::new(ManualClock::new());
        clock.script(ProcessId(0), vec![300]); // writer
        clock.script(ProcessId(1), vec![250]); // reader below the writer
        let s: MvtlStore<u64, MvtilPolicy> = MvtlStore::new(
            MvtilPolicy::early(100),
            clock as Arc<dyn ClockSource>,
            MvtlConfig::default(),
        );
        let mut w = s.begin(ProcessId(0));
        s.write(&mut w, Key(2), 1).unwrap();

        let mut r = s.begin(ProcessId(1));
        // The reader's interval is [250, 350]; the writer locked [300, 400], so
        // the reader keeps [250, 299...] and commits.
        assert_eq!(s.read(&mut r, Key(2)).unwrap(), None);
        s.commit(r).unwrap();
        s.commit(w).unwrap();
    }

    #[test]
    fn accessors() {
        let p = MvtilPolicy::late(42);
        assert_eq!(p.delta(), 42);
        assert_eq!(p.pick(), CommitPick::Late);
        assert_eq!(p.name(), "mvtil-late");
        assert_eq!(MvtilPolicy::early(1).name(), "mvtil-early");
    }
}
