//! The locking-policy interface (Algorithm 2) and the specialized policies of §5.
//!
//! The generic MVTL algorithm "depends on a policy of what locks to acquire,
//! how to pick one of many possible commit timestamps, and whether to garbage
//! collect during commit" (§4.3). [`LockingPolicy`] captures exactly those
//! choices; [`PolicyCtx`] is the window a policy gets onto the store (acquire
//! locks with or without waiting, consult the version chains, read the clock).

mod epsilon;
mod ghostbuster;
mod mvtil;
mod pessimistic;
mod pref;
mod prio;
mod to;

pub use epsilon::EpsilonPolicy;
pub use ghostbuster::GhostbusterPolicy;
pub use mvtil::{CommitPick, MvtilPolicy};
pub use pessimistic::PessimisticPolicy;
pub use pref::PrefPolicy;
pub use prio::PrioPolicy;
pub use to::ToPolicy;

use crate::txn::TxState;
use mvtl_common::{Key, ProcessId, Timestamp, TsRange, TsSet, TxError};

/// The result of a read-lock acquisition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadGrant {
    /// Timestamp of the version the read will return (`tr` in Algorithm 1);
    /// [`Timestamp::ZERO`] denotes the initial `⊥` version.
    pub version: Timestamp,
    /// The timestamps actually read-locked; always a (possibly empty)
    /// contiguous interval starting at `version.succ()`.
    pub granted: TsSet,
}

/// The store operations a policy may use to implement Algorithm 2.
///
/// Each method performs its work under the relevant per-key latch and keeps the
/// transaction-side lock mirror in [`TxState`] up to date.
pub trait PolicyCtx {
    /// Reads the clock as seen by `process` (respecting a pinned value for the
    /// transaction when one was supplied at begin).
    fn clock_value(&self, tx: &TxState, process: ProcessId) -> u64;

    /// Acquires read locks on `key` for the interval starting immediately after
    /// the latest committed version below `anchor_below` and extending up to
    /// `upper`.
    ///
    /// * With `wait = true` the call blocks (up to the configured timeout)
    ///   while timestamps in the interval are write-locked but not frozen,
    ///   exactly like the `repeat`/`wait` loops of Algorithms 4, 7, 8 and 10.
    /// * With `wait = false` it locks only the contiguous prefix that is
    ///   immediately grantable (MVTIL's interval shrinking).
    ///
    /// When a frozen write lock (i.e. a newly committed version) is discovered
    /// inside the interval, the acquisition re-anchors on the new version and
    /// retries, as in the paper's `repeat ... until found no frozen locks`.
    ///
    /// # Errors
    ///
    /// * [`TxError::Aborted`] with `LockTimeout` if waiting exceeded the
    ///   configured bound;
    /// * [`TxError::Aborted`] with `VersionPurged` if the anchor version has
    ///   been purged.
    fn acquire_read_interval(
        &self,
        tx: &mut TxState,
        key: Key,
        anchor_below: Timestamp,
        upper: Timestamp,
        wait: bool,
    ) -> Result<ReadGrant, TxError>;

    /// Acquires write locks for `tx` on as many timestamps of `desired` as
    /// possible.
    ///
    /// * With `wait = true` the call blocks while any timestamp of `desired` is
    ///   locked (read or write) but not frozen by another transaction, then
    ///   grants everything except frozen conflicts (Algorithms 4, 6, 9).
    /// * With `wait = false` it grants exactly what is free right now
    ///   (Algorithms 3, 8 and MVTIL).
    ///
    /// Returns the set actually granted (possibly empty).
    ///
    /// # Errors
    ///
    /// [`TxError::Aborted`] with `LockTimeout` if waiting exceeded the bound.
    fn acquire_write_range(
        &self,
        tx: &mut TxState,
        key: Key,
        desired: TsRange,
        wait: bool,
    ) -> Result<TsSet, TxError>;

    /// Releases every unfrozen write lock the transaction holds, on all keys
    /// ("release all write locks for tx" in Algorithms 3, 8 and 10).
    fn release_unfrozen_write_locks(&self, tx: &mut TxState);

    /// The latest committed version of `key` strictly below `below`, without
    /// acquiring any lock. Used by policies that only need to inspect state.
    ///
    /// # Errors
    ///
    /// [`TxError::Aborted`] with `VersionPurged` if that version was purged.
    fn latest_version_before(&self, key: Key, below: Timestamp) -> Result<Timestamp, TxError>;
}

/// A specialization of the generic MVTL algorithm: the five policy functions of
/// Algorithm 2 plus initialization and abort behaviour.
pub trait LockingPolicy: Send + Sync + 'static {
    /// Called by `begin`; corresponds to the `Initialization` functions of the
    /// specialized algorithms (obtain a clock value, set up `tx.TS`/`PossTS`).
    fn init(&self, ctx: &dyn PolicyCtx, tx: &mut TxState);

    /// `write-locks(tx, k)`: locks (or does not lock) timestamps when a write
    /// is executed.
    ///
    /// # Errors
    ///
    /// Returning an abort error aborts the transaction.
    fn write_locks(&self, ctx: &dyn PolicyCtx, tx: &mut TxState, key: Key) -> Result<(), TxError>;

    /// `read-locks(tx, k)`: selects the version to read and locks an interval
    /// immediately following it. Returns the version timestamp (`tr`),
    /// [`Timestamp::ZERO`] for the initial `⊥` version.
    ///
    /// # Errors
    ///
    /// Returning an abort error aborts the transaction.
    fn read_locks(
        &self,
        ctx: &dyn PolicyCtx,
        tx: &mut TxState,
        key: Key,
    ) -> Result<Timestamp, TxError>;

    /// `commit-locks(tx)`: locks acquired at commit time (e.g. write locks for
    /// policies that defer write locking).
    ///
    /// # Errors
    ///
    /// Returning an abort error aborts the transaction.
    fn commit_locks(&self, ctx: &dyn PolicyCtx, tx: &mut TxState) -> Result<(), TxError>;

    /// `commit-ts(T)`: picks the commit timestamp among the candidates `T`
    /// computed by the generic algorithm (Algorithm 1 line 13). Returning
    /// `None`, or a timestamp outside `candidates`, aborts the transaction.
    fn commit_ts(&self, tx: &TxState, candidates: &TsSet) -> Option<Timestamp>;

    /// The interval a participant *freezes* and reports to a cross-shard
    /// commit coordinator (§7): the subset of the lock-derived candidates `T`
    /// this policy is willing to commit at when it does not get to pick the
    /// timestamp itself.
    ///
    /// Every timestamp in `candidates` is covered by locks the transaction
    /// holds, so any subset is *safe*; the choice is about policy fidelity,
    /// not correctness. The default reports the full candidate set, which
    /// maximizes the chance that the coordinator finds a non-empty
    /// intersection across shards. Policies whose single-store pick is
    /// constrained to a window they maintain during execution (MVTIL's
    /// interval `I`, ε-clock's `tx.TS`) override this to narrow to that
    /// window, so a coordinator never serializes them outside their own
    /// discipline.
    fn prepared_interval(&self, tx: &TxState, candidates: &TsSet) -> TsSet {
        let _ = tx;
        candidates.clone()
    }

    /// `commit-gc(tx)`: whether to garbage collect the transaction's locks as
    /// part of commit (freeze read locks up to the commit timestamp, release
    /// everything else).
    fn commit_gc(&self, tx: &TxState) -> bool;

    /// Whether an *aborting* transaction releases its read locks.
    ///
    /// Timestamp locks make releasing on abort the natural choice ("if tx
    /// aborts, its read-locks are removed but the read-locks of other
    /// transactions remain", §3), and every policy does so — except
    /// [`ToPolicy`], which keeps them to faithfully emulate MVTO+'s
    /// read-timestamps and therefore exhibits MVTO+'s ghost aborts (§5.5).
    fn release_read_locks_on_abort(&self) -> bool {
        true
    }

    /// Short name used in reports and benchmarks.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_grant_shape() {
        let g = ReadGrant {
            version: Timestamp::at(3),
            granted: TsSet::from_range(TsRange::new(Timestamp::at(3).succ(), Timestamp::at(9))),
        };
        assert_eq!(g.version, Timestamp::at(3));
        assert!(g.granted.contains(Timestamp::at(5)));
        assert!(!g.granted.contains(Timestamp::at(3)));
    }
}
