//! MVTL-Pref (Algorithms 3/5): preferential + alternative timestamps.

use crate::policy::{LockingPolicy, PolicyCtx};
use crate::txn::TxState;
use mvtl_common::{Key, Timestamp, TsRange, TsSet, TxError};

/// The MVTL-Pref policy (§5.1, Algorithm 3/5, Theorem 2).
///
/// Each transaction gets a *preferential* timestamp from the clock plus a set
/// of *alternative* timestamps `A(t)`. The transaction tries to commit at the
/// preferential timestamp; if the commit-time write locks cannot be obtained
/// there, it falls back to an alternative. Reads lock as much of the window
/// covering the alternatives as possible so that the alternatives remain
/// viable.
///
/// When every alternative is smaller than the preferential timestamp
/// (`∀t' ∈ A(t), t' < t`), Theorem 2 shows MVTL-Pref aborts strictly fewer
/// workloads than MVTO+: any workload MVTO+ commits is also committed, and
/// infinitely many workloads abort under MVTO+ but commit here.
///
/// The alternative set is configured as value offsets relative to the
/// preferential timestamp; the default is `A(t) = {t − 10}`.
#[derive(Debug, Clone)]
pub struct PrefPolicy {
    offsets: Vec<i64>,
}

impl Default for PrefPolicy {
    fn default() -> Self {
        PrefPolicy { offsets: vec![-10] }
    }
}

impl PrefPolicy {
    /// Creates the policy with the default alternatives `A(t) = {t − 10}`.
    #[must_use]
    pub fn new() -> Self {
        PrefPolicy::default()
    }

    /// Creates the policy with alternatives at the given value offsets
    /// (negative offsets give alternatives in the past, which is what
    /// Theorem 2 requires).
    #[must_use]
    pub fn with_offsets(offsets: Vec<i64>) -> Self {
        PrefPolicy { offsets }
    }

    /// The configured offsets.
    #[must_use]
    pub fn offsets(&self) -> &[i64] {
        &self.offsets
    }

    fn alternatives(&self, pref: Timestamp) -> Vec<Timestamp> {
        self.offsets
            .iter()
            .filter_map(|off| {
                let value = if *off >= 0 {
                    pref.value.checked_add(*off as u64)?
                } else {
                    pref.value.checked_sub(off.unsigned_abs())?
                };
                if value == 0 || value == pref.value {
                    None
                } else {
                    Some(Timestamp::new(value, pref.process))
                }
            })
            .collect()
    }

    /// The candidate commit timestamps in the order they are tried:
    /// preferential first, then alternatives from largest to smallest.
    fn ordered_candidates(&self, tx: &TxState) -> Vec<Timestamp> {
        let pref = tx.start_ts.expect("init sets the preferential timestamp");
        let mut rest: Vec<Timestamp> = tx
            .ts_set
            .ranges()
            .iter()
            .flat_map(|r| [r.start, r.end])
            .filter(|t| *t != pref)
            .collect();
        rest.sort();
        rest.dedup();
        rest.reverse();
        let mut out = Vec::with_capacity(rest.len() + 1);
        if tx.ts_set.contains(pref) {
            out.push(pref);
        }
        out.extend(rest);
        out
    }
}

impl LockingPolicy for PrefPolicy {
    fn init(&self, ctx: &dyn PolicyCtx, tx: &mut TxState) {
        let value = ctx.clock_value(tx, tx.process).max(1);
        let pref = Timestamp::new(value, tx.process.0);
        tx.start_ts = Some(pref);
        let mut poss = TsSet::from_point(pref);
        for alt in self.alternatives(pref) {
            poss.insert(alt);
        }
        tx.ts_set = poss;
    }

    fn write_locks(
        &self,
        _ctx: &dyn PolicyCtx,
        _tx: &mut TxState,
        _key: Key,
    ) -> Result<(), TxError> {
        // The write set is locked only at commit time (Algorithm 3 line 4).
        Ok(())
    }

    fn read_locks(
        &self,
        ctx: &dyn PolicyCtx,
        tx: &mut TxState,
        key: Key,
    ) -> Result<Timestamp, TxError> {
        let pref = tx.start_ts.expect("init sets the preferential timestamp");
        let upper = tx.ts_set.max().unwrap_or(pref).max(pref);
        // Anchor on the version preceding the preferential timestamp, then lock
        // as far up as possible to keep alternatives viable.
        let grant = ctx.acquire_read_interval(tx, key, pref, upper, true)?;
        // PossTS <- PossTS ∩ [tr+1, tmax]; alternatives at or below the version
        // read are no longer viable because no read lock can cover them.
        let tmax = grant.granted.max().unwrap_or(grant.version);
        tx.ts_set.intersect_range(TsRange::new(
            grant.version.succ(),
            tmax.max(grant.version.succ()),
        ));
        Ok(grant.version)
    }

    fn commit_locks(&self, ctx: &dyn PolicyCtx, tx: &mut TxState) -> Result<(), TxError> {
        if tx.write_keys.is_empty() {
            // Read-only: commit at the preferential timestamp if still viable,
            // otherwise any remaining candidate (resolved by commit_ts).
            tx.chosen_ts = None;
            return Ok(());
        }
        let write_keys = tx.write_keys.clone();
        for t in self.ordered_candidates(tx) {
            let mut got_all = true;
            for key in &write_keys {
                let granted = ctx.acquire_write_range(tx, *key, TsRange::point(t), false)?;
                if !granted.contains(t) {
                    got_all = false;
                    ctx.release_unfrozen_write_locks(tx);
                    break;
                }
            }
            if got_all {
                tx.chosen_ts = Some(t);
                return Ok(());
            }
        }
        tx.chosen_ts = None;
        Ok(())
    }

    fn commit_ts(&self, tx: &TxState, candidates: &TsSet) -> Option<Timestamp> {
        if tx.write_keys.is_empty() {
            // Read-only transactions: preferential timestamp if covered,
            // otherwise the largest candidate still covered by read locks.
            let pref = tx.start_ts?;
            if candidates.contains(pref) {
                return Some(pref);
            }
            return candidates
                .intersection(&tx.ts_set)
                .max()
                .or_else(|| candidates.max());
        }
        tx.chosen_ts.filter(|t| candidates.contains(*t))
    }

    fn commit_gc(&self, _tx: &TxState) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "mvtl-pref"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ToPolicy;
    use crate::{MvtlConfig, MvtlStore};
    use mvtl_clock::{ClockSource, ManualClock};
    use mvtl_common::{ProcessId, TransactionalKV};
    use std::sync::Arc;

    /// The Theorem 2(b) workload: W1(Y) C1  R2(X) R3(Y) C3  W2(Y) C2 with
    /// timestamps t1 < maxA(t2) < t2 < t3. MVTO+ aborts T2 (it wants to write Y
    /// between T1's version and T3's read); MVTL-Pref commits T2 at the
    /// alternative timestamp.
    fn theorem2_schedule<P: crate::policy::LockingPolicy>(policy: P) -> bool {
        let clock = Arc::new(ManualClock::new());
        clock.script(ProcessId(1), vec![5]);
        clock.script(ProcessId(2), vec![30]);
        clock.script(ProcessId(3), vec![40]);
        let store: MvtlStore<u64, P> = MvtlStore::new(
            policy,
            Arc::clone(&clock) as Arc<dyn ClockSource>,
            MvtlConfig::default(),
        );
        let x = Key(1);
        let y = Key(2);

        let mut t1 = store.begin(ProcessId(1));
        store.write(&mut t1, y, 100).unwrap();
        store.commit(t1).unwrap();

        let mut t2 = store.begin(ProcessId(2));
        let mut t3 = store.begin(ProcessId(3));
        let _ = store.read(&mut t2, x).unwrap();
        assert_eq!(store.read(&mut t3, y).unwrap(), Some(100));
        store.commit(t3).unwrap();

        if store.write(&mut t2, y, 200).is_err() {
            return false;
        }
        store.commit(t2).is_ok()
    }

    #[test]
    fn mvto_plus_aborts_the_theorem2_workload() {
        assert!(
            !theorem2_schedule(ToPolicy::new()),
            "MVTL-TO (MVTO+) must abort T2"
        );
    }

    #[test]
    fn pref_commits_the_theorem2_workload_via_an_alternative() {
        // Theorem 2(b) requires max A(t2) < t1: with A(t) = { t - 28 }, T2's
        // alternative is 2, below T1's version of Y at 5 and therefore below
        // the read locks T3 holds on Y ([6, 40]). T2 commits there.
        assert!(
            theorem2_schedule(PrefPolicy::with_offsets(vec![-28])),
            "MVTL-Pref must commit T2 using its alternative timestamp"
        );
    }

    #[test]
    fn pref_prefers_the_preferential_timestamp_when_possible() {
        let clock = Arc::new(ManualClock::new());
        clock.script(ProcessId(0), vec![50]);
        let store: MvtlStore<u64, PrefPolicy> = MvtlStore::new(
            PrefPolicy::with_offsets(vec![-20]),
            clock as Arc<dyn ClockSource>,
            MvtlConfig::default(),
        );
        let mut tx = store.begin(ProcessId(0));
        store.write(&mut tx, Key(1), 1).unwrap();
        let info = store.commit(tx).unwrap();
        assert_eq!(info.commit_ts, Some(Timestamp::new(50, 0)));
    }

    #[test]
    fn read_only_transactions_commit() {
        let clock = Arc::new(ManualClock::new());
        clock.script(ProcessId(0), vec![10]);
        clock.script(ProcessId(1), vec![20]);
        let store: MvtlStore<u64, PrefPolicy> = MvtlStore::new(
            PrefPolicy::new(),
            clock as Arc<dyn ClockSource>,
            MvtlConfig::default(),
        );
        let mut w = store.begin(ProcessId(0));
        store.write(&mut w, Key(4), 9).unwrap();
        store.commit(w).unwrap();
        let mut r = store.begin(ProcessId(1));
        assert_eq!(store.read(&mut r, Key(4)).unwrap(), Some(9));
        store.commit(r).unwrap();
    }

    #[test]
    fn alternatives_are_clamped_and_unique() {
        let p = PrefPolicy::with_offsets(vec![-5, 0, 5, -1_000_000]);
        let alts = p.alternatives(Timestamp::new(10, 3));
        // offset 0 collides with the preferential timestamp and is dropped;
        // -1_000_000 underflows and is dropped.
        assert_eq!(alts.len(), 2);
        assert!(alts.contains(&Timestamp::new(5, 3)));
        assert!(alts.contains(&Timestamp::new(15, 3)));
        assert_eq!(p.offsets(), &[-5, 0, 5, -1_000_000]);
    }
}
