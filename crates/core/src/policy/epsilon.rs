//! MVTL-ε-clock (Algorithms 4/7): no serial aborts with ε-synchronized clocks.

use crate::policy::{LockingPolicy, PolicyCtx};
use crate::txn::TxState;
use mvtl_common::{AbortReason, Key, Timestamp, TsRange, TsSet, TxError};

/// The MVTL-ε-clock policy (§5.3, Algorithm 4/7, Theorem 4).
///
/// On begin, a transaction reads its (possibly skewed, but ε-synchronized)
/// local clock `t` and sets its candidate interval `tx.TS = [t−ε, t+ε]`, which
/// is guaranteed to contain the true real time. Writes lock as much of `tx.TS`
/// as they can (waiting on unfrozen conflicts), reads lock from the version
/// read up to `max tx.TS`, and the transaction commits at the **smallest**
/// locked timestamp, garbage collecting as it commits. In a serial execution
/// each transaction therefore commits at or below its own real start time and
/// releases everything above it, so the next transaction always finds its own
/// real time unlocked — no serial aborts.
#[derive(Debug, Clone, Copy)]
pub struct EpsilonPolicy {
    epsilon: u64,
}

impl EpsilonPolicy {
    /// Creates the policy for clocks that are ε-synchronized.
    #[must_use]
    pub fn new(epsilon: u64) -> Self {
        EpsilonPolicy { epsilon }
    }

    /// The synchronization bound ε.
    #[must_use]
    pub fn epsilon(&self) -> u64 {
        self.epsilon
    }

    fn interval(&self, tx: &TxState, now: u64) -> TsRange {
        let low = now.saturating_sub(self.epsilon).max(1);
        let high = now.saturating_add(self.epsilon);
        TsRange::new(Timestamp::new(low, 0), Timestamp::new(high, u32::MAX))
            .intersection(&TsRange::all())
            .unwrap_or_else(|| TsRange::point(Timestamp::new(now.max(1), tx.process.0)))
    }
}

impl LockingPolicy for EpsilonPolicy {
    fn init(&self, ctx: &dyn PolicyCtx, tx: &mut TxState) {
        let now = ctx.clock_value(tx, tx.process);
        tx.start_ts = Some(Timestamp::new(now, tx.process.0));
        tx.ts_set = TsSet::from_range(self.interval(tx, now));
    }

    fn write_locks(&self, ctx: &dyn PolicyCtx, tx: &mut TxState, key: Key) -> Result<(), TxError> {
        if tx.ts_set.is_empty() {
            return Err(TxError::aborted(AbortReason::IntervalExhausted { key }));
        }
        // Try to write-lock tx.TS, waiting on unfrozen conflicts; then shrink
        // tx.TS to what was actually acquired.
        // Index walk instead of cloning the range list: `acquire_write_range`
        // never mutates `ts_set`.
        let mut acquired = TsSet::new();
        let mut i = 0;
        while let Some(range) = tx.ts_set.ranges().get(i).copied() {
            let granted = ctx.acquire_write_range(tx, key, range, true)?;
            acquired = acquired.union(&granted);
            i += 1;
        }
        tx.ts_set = tx.ts_set.intersection(&acquired);
        if tx.ts_set.is_empty() {
            return Err(TxError::aborted(AbortReason::IntervalExhausted { key }));
        }
        Ok(())
    }

    fn read_locks(
        &self,
        ctx: &dyn PolicyCtx,
        tx: &mut TxState,
        key: Key,
    ) -> Result<Timestamp, TxError> {
        let Some(upper) = tx.ts_set.max() else {
            return Err(TxError::aborted(AbortReason::IntervalExhausted { key }));
        };
        let grant = ctx.acquire_read_interval(tx, key, upper, upper, true)?;
        // tx.TS <- tx.TS ∩ [tr+1, m]
        tx.ts_set
            .intersect_range(TsRange::new(grant.version.succ(), upper));
        if tx.ts_set.is_empty() {
            return Err(TxError::aborted(AbortReason::IntervalExhausted { key }));
        }
        Ok(grant.version)
    }

    fn commit_locks(&self, _ctx: &dyn PolicyCtx, _tx: &mut TxState) -> Result<(), TxError> {
        Ok(())
    }

    fn commit_ts(&self, tx: &TxState, candidates: &TsSet) -> Option<Timestamp> {
        candidates.intersection(&tx.ts_set).min()
    }

    fn prepared_interval(&self, tx: &TxState, candidates: &TsSet) -> TsSet {
        // Freeze only what is left of tx.TS: committing outside the ε-window
        // would void the real-time guarantee of Theorem 4.
        candidates.intersection(&tx.ts_set)
    }

    fn commit_gc(&self, _tx: &TxState) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "mvtl-epsilon-clock"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ToPolicy;
    use crate::{MvtlConfig, MvtlStore};
    use mvtl_clock::{ClockSource, GlobalClock, SkewedClock};
    use mvtl_common::{ProcessId, TransactionalKV};
    use std::collections::HashMap;
    use std::sync::Arc;

    /// A skewed clock where process 1 lags 3 ticks behind process 2.
    fn skewed() -> Arc<dyn ClockSource> {
        let mut offsets = HashMap::new();
        offsets.insert(1u32, -3i64);
        Arc::new(SkewedClock::new(GlobalClock::starting_at(100), offsets))
    }

    #[test]
    fn serial_schedule_aborts_under_to_but_not_under_epsilon_clock() {
        // The §5.3 schedule: T2 reads X and commits, then T1 (whose local
        // clock is behind) writes X. Serial execution, so no real conflict.
        let to_store: MvtlStore<u64, ToPolicy> =
            MvtlStore::new(ToPolicy::new(), skewed(), MvtlConfig::default());
        let mut t2 = to_store.begin(ProcessId(2));
        let _ = to_store.read(&mut t2, Key(1)).unwrap();
        to_store.commit(t2).unwrap();
        let mut t1 = to_store.begin(ProcessId(1));
        to_store.write(&mut t1, Key(1), 5).unwrap();
        assert!(
            to_store.commit(t1).is_err(),
            "MVTL-TO suffers a serial abort under skewed clocks"
        );

        // With ε = 5 ≥ the skew, the ε-clock policy commits both.
        let eps_store: MvtlStore<u64, EpsilonPolicy> =
            MvtlStore::new(EpsilonPolicy::new(5), skewed(), MvtlConfig::default());
        let mut t2 = eps_store.begin(ProcessId(2));
        let _ = eps_store.read(&mut t2, Key(1)).unwrap();
        eps_store.commit(t2).unwrap();
        let mut t1 = eps_store.begin(ProcessId(1));
        eps_store.write(&mut t1, Key(1), 5).unwrap();
        eps_store.commit(t1).unwrap();
    }

    #[test]
    fn long_serial_history_never_aborts() {
        // Theorem 4 exercised over a longer serial history with alternating
        // fast/slow processes.
        let mut offsets = HashMap::new();
        offsets.insert(0u32, 4i64);
        offsets.insert(1u32, -4i64);
        let clock: Arc<dyn ClockSource> =
            Arc::new(SkewedClock::new(GlobalClock::starting_at(50), offsets));
        let store: MvtlStore<u64, EpsilonPolicy> =
            MvtlStore::new(EpsilonPolicy::new(4), clock, MvtlConfig::default());
        for i in 0..60u64 {
            let p = ProcessId((i % 2) as u32);
            let mut tx = store.begin(p);
            let prev = store.read(&mut tx, Key(1)).unwrap().unwrap_or(0);
            store.write(&mut tx, Key(1), prev + 1).unwrap();
            store
                .commit(tx)
                .unwrap_or_else(|e| panic!("serial transaction {i} aborted: {e}"));
        }
        let mut check = store.begin(ProcessId(0));
        assert_eq!(store.read(&mut check, Key(1)).unwrap(), Some(60));
        store.commit(check).unwrap();
    }

    #[test]
    fn commit_timestamp_is_within_the_interval() {
        let store: MvtlStore<u64, EpsilonPolicy> = MvtlStore::new(
            EpsilonPolicy::new(10),
            Arc::new(GlobalClock::starting_at(1000)),
            MvtlConfig::default(),
        );
        let mut tx = store.begin(ProcessId(0));
        store.write(&mut tx, Key(1), 1).unwrap();
        let start = tx.state().start_ts.unwrap();
        let info = store.commit(tx).unwrap();
        let cts = info.commit_ts.unwrap();
        assert!(cts.value + 10 >= start.value && cts.value <= start.value + 10);
    }

    #[test]
    fn skew_beyond_epsilon_still_aborts() {
        // Theorem 4 only protects serial executions when the skew is within ε.
        // With ε = 0 and a 1-tick skew, the old serial abort reappears: the
        // slow writer's whole interval is covered by the reader's frozen read
        // locks and its candidate interval exhausts.
        let clock = Arc::new(mvtl_clock::ManualClock::new());
        clock.script(ProcessId(0), vec![11]);
        clock.script(ProcessId(1), vec![10]);
        let store: MvtlStore<u64, EpsilonPolicy> = MvtlStore::new(
            EpsilonPolicy::new(0),
            clock as Arc<dyn ClockSource>,
            MvtlConfig::default(),
        );
        let mut a = store.begin(ProcessId(0));
        let _ = store.read(&mut a, Key(1)).unwrap();
        store.commit(a).unwrap();
        let mut b = store.begin(ProcessId(1));
        let err = store.write(&mut b, Key(1), 2).unwrap_err();
        assert!(err.is_abort());
    }
}
