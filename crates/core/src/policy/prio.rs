//! MVTL-Prio (Algorithm 6): prioritizing critical transactions.

use crate::policy::{LockingPolicy, PolicyCtx};
use crate::txn::TxState;
use mvtl_common::{AbortReason, Key, Timestamp, TsRange, TsSet, TxError};

/// The MVTL-Prio policy (§5.2, Algorithm 6, Theorem 3).
///
/// Transactions carry a priority flag (set with
/// [`MvtlTransaction::set_priority`](crate::MvtlTransaction::set_priority) or
/// [`MvtlStore::begin_critical`](crate::MvtlStore::begin_critical)):
///
/// * **normal** transactions behave exactly like MVTL-TO / MVTO+ — they pick a
///   clock timestamp and serialize everything there;
/// * **critical** transactions lock aggressively, like pessimistic concurrency
///   control: writes lock all timestamps and reads lock `[tr+1, +∞]`. Because
///   a normal transaction only ever holds locks at or below its own (finite)
///   clock timestamp, it can never deny a critical transaction the upper part
///   of the timeline — so "transactions labeled critical are never aborted by
///   transactions labeled normal".
///
/// Critical transactions may deadlock among themselves (resolved by the lock
/// timeout); normal transactions never cause deadlocks.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrioPolicy;

impl PrioPolicy {
    /// Creates the MVTL-Prio policy.
    #[must_use]
    pub fn new() -> Self {
        PrioPolicy
    }
}

impl LockingPolicy for PrioPolicy {
    fn init(&self, ctx: &dyn PolicyCtx, tx: &mut TxState) {
        let value = ctx.clock_value(tx, tx.process);
        let ts = Timestamp::new(value, tx.process.0);
        tx.start_ts = Some(ts);
        if !tx.priority {
            tx.chosen_ts = Some(ts);
            tx.ts_set = TsSet::from_point(ts);
        }
    }

    fn write_locks(&self, ctx: &dyn PolicyCtx, tx: &mut TxState, key: Key) -> Result<(), TxError> {
        if tx.priority {
            // Critical: write-lock all the possible timestamps (blocking on
            // unfrozen conflicts).
            ctx.acquire_write_range(tx, key, TsRange::all(), true)?;
        }
        Ok(())
    }

    fn read_locks(
        &self,
        ctx: &dyn PolicyCtx,
        tx: &mut TxState,
        key: Key,
    ) -> Result<Timestamp, TxError> {
        if tx.priority {
            let grant = ctx.acquire_read_interval(tx, key, Timestamp::MAX, Timestamp::MAX, true)?;
            Ok(grant.version)
        } else {
            let ts = tx.start_ts.expect("init sets the start timestamp");
            let grant = ctx.acquire_read_interval(tx, key, ts, ts, true)?;
            Ok(grant.version)
        }
    }

    fn commit_locks(&self, ctx: &dyn PolicyCtx, tx: &mut TxState) -> Result<(), TxError> {
        if tx.priority {
            return Ok(());
        }
        let ts = tx.start_ts.expect("init sets the start timestamp");
        let write_keys = tx.write_keys.clone();
        for key in write_keys {
            let granted = ctx.acquire_write_range(tx, key, TsRange::point(ts), false)?;
            if !granted.contains(ts) {
                ctx.release_unfrozen_write_locks(tx);
                tx.chosen_ts = None;
                return Err(TxError::aborted(AbortReason::WriteConflict { key }));
            }
        }
        Ok(())
    }

    fn commit_ts(&self, tx: &TxState, candidates: &TsSet) -> Option<Timestamp> {
        if tx.priority {
            candidates.min()
        } else {
            tx.chosen_ts.filter(|t| candidates.contains(*t))
        }
    }

    fn commit_gc(&self, _tx: &TxState) -> bool {
        // §5.2: "Both types of transactions garbage collect on commit." This is
        // also what Theorem 3's proof relies on: once a normal transaction
        // finishes, only its frozen locks (which end at its commit timestamp)
        // remain, so it can never deny a critical transaction the upper part of
        // the timeline. (Algorithm 6 in the appendix returns false for normal
        // transactions, which contradicts the section text; we follow the text.)
        true
    }

    fn name(&self) -> &'static str {
        "mvtl-prio"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MvtlConfig, MvtlStore};
    use mvtl_clock::{ClockSource, GlobalClock, ManualClock};
    use mvtl_common::{ProcessId, TransactionalKV};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn normal_transactions_behave_like_to() {
        let store: MvtlStore<u64, PrioPolicy> = MvtlStore::new(
            PrioPolicy::new(),
            Arc::new(GlobalClock::new()),
            MvtlConfig::default(),
        );
        let mut tx = store.begin(ProcessId(0));
        store.write(&mut tx, Key(1), 1).unwrap();
        store.commit(tx).unwrap();
        let mut tx = store.begin(ProcessId(1));
        assert_eq!(store.read(&mut tx, Key(1)).unwrap(), Some(1));
        store.commit(tx).unwrap();
    }

    #[test]
    fn critical_transaction_survives_conflicting_normal_reader() {
        // Theorem 3: a critical writer is never aborted because of normal
        // transactions. A normal reader with a *later* timestamp would abort a
        // plain MVTO+/MVTL-TO writer (serializing in the past); the critical
        // writer instead commits above the reader's locks.
        let clock = Arc::new(ManualClock::new());
        clock.script(ProcessId(1), vec![1]);
        clock.script(ProcessId(9), vec![9]);
        let store: MvtlStore<u64, PrioPolicy> = MvtlStore::new(
            PrioPolicy::new(),
            Arc::clone(&clock) as Arc<dyn ClockSource>,
            MvtlConfig::default().with_lock_wait_timeout(Duration::from_millis(30)),
        );
        let x = Key(7);

        // Normal reader at timestamp 9 reads X and commits (no GC for normal
        // transactions, so its read locks up to timestamp 9 stay behind).
        let mut reader = store.begin(ProcessId(9));
        assert_eq!(store.read(&mut reader, x).unwrap(), None);
        store.commit(reader).unwrap();

        // A critical writer whose clock says 1 still commits: it locks the
        // whole timeline and serializes after the reader.
        let mut critical = store.begin_critical(ProcessId(1));
        store.write(&mut critical, x, 42).unwrap();
        let info = store.commit(critical).unwrap();
        assert!(info.commit_ts.unwrap() > Timestamp::new(9, 9));

        // For contrast, a *normal* writer with timestamp 1 aborts on the same
        // schedule (that is the serial-abort behaviour of MVTO+).
        clock.script(ProcessId(2), vec![1]);
        let mut normal = store.begin(ProcessId(2));
        store.write(&mut normal, x, 43).unwrap();
        assert!(store.commit(normal).is_err());
    }

    #[test]
    fn critical_transactions_read_latest_committed_state() {
        let store: MvtlStore<u64, PrioPolicy> = MvtlStore::new(
            PrioPolicy::new(),
            Arc::new(GlobalClock::new()),
            MvtlConfig::default(),
        );
        let mut setup = store.begin(ProcessId(0));
        store.write(&mut setup, Key(2), 5).unwrap();
        store.commit(setup).unwrap();

        let mut critical = store.begin_critical(ProcessId(1));
        assert_eq!(store.read(&mut critical, Key(2)).unwrap(), Some(5));
        store.write(&mut critical, Key(2), 6).unwrap();
        store.commit(critical).unwrap();

        let mut after = store.begin(ProcessId(2));
        assert_eq!(store.read(&mut after, Key(2)).unwrap(), Some(6));
        store.commit(after).unwrap();
    }

    #[test]
    fn two_critical_writers_serialize_by_blocking_or_timeout() {
        let store: MvtlStore<u64, PrioPolicy> = MvtlStore::new(
            PrioPolicy::new(),
            Arc::new(GlobalClock::new()),
            MvtlConfig::default().with_lock_wait_timeout(Duration::from_millis(20)),
        );
        let mut a = store.begin_critical(ProcessId(0));
        store.write(&mut a, Key(3), 1).unwrap();
        // The second critical writer cannot acquire the timeline while `a`
        // holds it; it times out (pessimistic behaviour).
        let mut b = store.begin_critical(ProcessId(1));
        assert!(store.write(&mut b, Key(3), 2).is_err());
        store.commit(a).unwrap();
    }
}
