//! MVTL-Pessimistic (Algorithm 9): pessimistic concurrency control as a
//! special case of MVTL.

use crate::policy::{LockingPolicy, PolicyCtx};
use crate::txn::TxState;
use mvtl_common::{Key, Timestamp, TsRange, TsSet, TxError};

/// The MVTL-Pessimistic policy (§5.4, Algorithm 9, Theorem 6).
///
/// Writes try to lock **all** timestamps (the range `[0, +∞]`), and reads lock
/// `[tr+1, +∞]`, both waiting on unfrozen conflicting locks. Holding the upper
/// end of the timeline is what makes the behaviour identical to object-level
/// pessimistic locking: at most one writer (or several readers) can hold `+∞`
/// for a key at a time, so conflicting transactions serialize by blocking
/// rather than aborting. The transaction commits at the smallest timestamp
/// locked for all its data and then garbage collects, releasing the upper part
/// of the timeline for the next transaction.
///
/// Like its object-locking counterpart, this policy can deadlock; the engine's
/// lock-wait timeout doubles as deadlock resolution.
#[derive(Debug, Clone, Copy, Default)]
pub struct PessimisticPolicy;

impl PessimisticPolicy {
    /// Creates the MVTL-Pessimistic policy.
    #[must_use]
    pub fn new() -> Self {
        PessimisticPolicy
    }
}

impl LockingPolicy for PessimisticPolicy {
    fn init(&self, ctx: &dyn PolicyCtx, tx: &mut TxState) {
        // The clock is not needed for locking decisions, but remembering the
        // begin time keeps reports informative.
        let value = ctx.clock_value(tx, tx.process);
        tx.start_ts = Some(Timestamp::new(value, tx.process.0));
    }

    fn write_locks(&self, ctx: &dyn PolicyCtx, tx: &mut TxState, key: Key) -> Result<(), TxError> {
        // Write-lock all the possible timestamps, waiting if a timestamp is
        // read- or write-locked but not frozen.
        ctx.acquire_write_range(tx, key, TsRange::all(), true)?;
        Ok(())
    }

    fn read_locks(
        &self,
        ctx: &dyn PolicyCtx,
        tx: &mut TxState,
        key: Key,
    ) -> Result<Timestamp, TxError> {
        let grant = ctx.acquire_read_interval(tx, key, Timestamp::MAX, Timestamp::MAX, true)?;
        Ok(grant.version)
    }

    fn commit_locks(&self, _ctx: &dyn PolicyCtx, _tx: &mut TxState) -> Result<(), TxError> {
        Ok(())
    }

    fn commit_ts(&self, _tx: &TxState, candidates: &TsSet) -> Option<Timestamp> {
        candidates.min()
    }

    fn commit_gc(&self, _tx: &TxState) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "mvtl-pessimistic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MvtlConfig, MvtlStore};
    use mvtl_clock::GlobalClock;
    use mvtl_common::{AbortReason, ProcessId, TransactionalKV};
    use std::sync::Arc;
    use std::time::Duration;

    fn store() -> MvtlStore<u64, PessimisticPolicy> {
        MvtlStore::new(
            PessimisticPolicy::new(),
            Arc::new(GlobalClock::new()),
            MvtlConfig::default().with_lock_wait_timeout(Duration::from_millis(30)),
        )
    }

    #[test]
    fn sequential_transactions_never_abort() {
        let s = store();
        for i in 0..20u64 {
            let mut tx = s.begin(ProcessId(0));
            let prev = s.read(&mut tx, Key(1)).unwrap().unwrap_or(0);
            s.write(&mut tx, Key(1), prev + i).unwrap();
            s.commit(tx).unwrap();
        }
        let mut tx = s.begin(ProcessId(0));
        assert!(s.read(&mut tx, Key(1)).unwrap().is_some());
        s.commit(tx).unwrap();
    }

    #[test]
    fn conflicting_writer_blocks_until_timeout() {
        // A second writer on the same key cannot proceed while the first holds
        // the +inf write lock; with the short timeout it aborts (deadlock /
        // starvation resolution), exactly like blocking 2PL with timeouts.
        let s = store();
        let mut t1 = s.begin(ProcessId(0));
        s.write(&mut t1, Key(5), 1).unwrap();

        let mut t2 = s.begin(ProcessId(1));
        let err = s.write(&mut t2, Key(5), 2).unwrap_err();
        assert_eq!(
            err.abort_reason(),
            Some(&AbortReason::LockTimeout { key: Key(5) })
        );

        // The first transaction is unaffected and commits.
        s.commit(t1).unwrap();
    }

    #[test]
    fn readers_share_access() {
        let s = store();
        let mut w = s.begin(ProcessId(0));
        s.write(&mut w, Key(3), 9).unwrap();
        s.commit(w).unwrap();

        let mut r1 = s.begin(ProcessId(1));
        let mut r2 = s.begin(ProcessId(2));
        assert_eq!(s.read(&mut r1, Key(3)).unwrap(), Some(9));
        assert_eq!(s.read(&mut r2, Key(3)).unwrap(), Some(9));
        s.commit(r1).unwrap();
        s.commit(r2).unwrap();
    }

    #[test]
    fn reader_blocks_writer_then_proceeds_after_commit() {
        let s = store();
        let mut r = s.begin(ProcessId(1));
        assert_eq!(s.read(&mut r, Key(4)).unwrap(), None);
        // Writer cannot get the lock while the reader holds [1, +inf].
        let mut w = s.begin(ProcessId(2));
        assert!(s.write(&mut w, Key(4), 1).is_err());
        // After the reader commits (and GC releases its locks), writing works.
        s.commit(r).unwrap();
        let mut w2 = s.begin(ProcessId(2));
        s.write(&mut w2, Key(4), 1).unwrap();
        s.commit(w2).unwrap();
    }

    #[test]
    fn commits_at_smallest_locked_timestamp() {
        let s = store();
        let mut w = s.begin(ProcessId(0));
        s.write(&mut w, Key(8), 1).unwrap();
        let first = s.commit(w).unwrap().commit_ts.unwrap();

        let mut w2 = s.begin(ProcessId(0));
        s.write(&mut w2, Key(8), 2).unwrap();
        let second = s.commit(w2).unwrap().commit_ts.unwrap();
        assert!(second > first, "{second:?} must follow {first:?}");
    }
}
