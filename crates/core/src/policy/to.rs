//! MVTL-TO (Algorithm 8): the policy that makes MVTL behave exactly like MVTO+.

use crate::policy::{LockingPolicy, PolicyCtx};
use crate::txn::TxState;
use mvtl_common::{AbortReason, Key, Timestamp, TsRange, TsSet, TxError};

/// The MVTL-TO policy (§5.4, Algorithm 8).
///
/// Each transaction chooses a serialization timestamp at the beginning and
/// attempts to serialize every operation at it:
///
/// * reads lock `[tr+1, ts]` (waiting on unfrozen write locks), which is the
///   timestamp-lock reading of MVTO+'s read-timestamps;
/// * writes lock nothing until commit, where the single timestamp `ts` is
///   write-locked without waiting — failure means an MVTO+-style write
///   rejection;
/// * no garbage collection is performed on commit, and aborting transactions
///   keep their read locks, mirroring MVTO+'s policy of never lowering
///   read-timestamps. This faithfully reproduces MVTO+'s *ghost aborts*
///   (Theorem 7 is about removing them — see
///   [`GhostbusterPolicy`](crate::policy::GhostbusterPolicy)).
#[derive(Debug, Clone, Copy, Default)]
pub struct ToPolicy;

impl ToPolicy {
    /// Creates the MVTL-TO policy.
    #[must_use]
    pub fn new() -> Self {
        ToPolicy
    }
}

impl LockingPolicy for ToPolicy {
    fn init(&self, ctx: &dyn PolicyCtx, tx: &mut TxState) {
        let value = ctx.clock_value(tx, tx.process);
        let ts = Timestamp::new(value, tx.process.0);
        tx.start_ts = Some(ts);
        tx.chosen_ts = Some(ts);
        tx.ts_set = TsSet::from_point(ts);
    }

    fn write_locks(
        &self,
        _ctx: &dyn PolicyCtx,
        _tx: &mut TxState,
        _key: Key,
    ) -> Result<(), TxError> {
        // Writes lock nothing until commit time.
        Ok(())
    }

    fn read_locks(
        &self,
        ctx: &dyn PolicyCtx,
        tx: &mut TxState,
        key: Key,
    ) -> Result<Timestamp, TxError> {
        let ts = tx.start_ts.expect("init sets the start timestamp");
        let grant = ctx.acquire_read_interval(tx, key, ts, ts, true)?;
        Ok(grant.version)
    }

    fn commit_locks(&self, ctx: &dyn PolicyCtx, tx: &mut TxState) -> Result<(), TxError> {
        let ts = tx.start_ts.expect("init sets the start timestamp");
        let write_keys = tx.write_keys.clone();
        for key in write_keys {
            let granted = ctx.acquire_write_range(tx, key, TsRange::point(ts), false)?;
            if !granted.contains(ts) {
                // "if write-lock not acquired then release all write locks and abort"
                ctx.release_unfrozen_write_locks(tx);
                tx.chosen_ts = None;
                return Err(TxError::aborted(AbortReason::WriteConflict { key }));
            }
        }
        Ok(())
    }

    fn commit_ts(&self, tx: &TxState, candidates: &TsSet) -> Option<Timestamp> {
        tx.chosen_ts.filter(|t| candidates.contains(*t))
    }

    fn commit_gc(&self, _tx: &TxState) -> bool {
        false
    }

    fn release_read_locks_on_abort(&self) -> bool {
        // MVTO+ never lowers a read-timestamp; keeping the read locks of
        // aborted transactions reproduces exactly that behaviour (and its ghost
        // aborts).
        false
    }

    fn name(&self) -> &'static str {
        "mvtl-to"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MvtlConfig, MvtlStore};
    use mvtl_clock::{ClockSource, ManualClock};
    use mvtl_common::{ProcessId, TransactionalKV};
    use std::sync::Arc;

    fn store_with_manual() -> (MvtlStore<u64, ToPolicy>, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let store = MvtlStore::new(
            ToPolicy::new(),
            Arc::clone(&clock) as Arc<dyn ClockSource>,
            MvtlConfig::default(),
        );
        (store, clock)
    }

    #[test]
    fn serializes_at_the_start_timestamp() {
        let (s, clock) = store_with_manual();
        clock.script(ProcessId(0), vec![10]);
        let mut tx = s.begin(ProcessId(0));
        s.write(&mut tx, Key(1), 5).unwrap();
        let info = s.commit(tx).unwrap();
        assert_eq!(info.commit_ts, Some(Timestamp::new(10, 0)));
    }

    #[test]
    fn reproduces_the_serial_abort_of_section_5_3() {
        // T2 gets timestamp 2, reads X and commits; then T1 gets the *smaller*
        // timestamp 1, writes X and must abort — a serial abort.
        let (s, clock) = store_with_manual();
        clock.script(ProcessId(2), vec![2]);
        clock.script(ProcessId(1), vec![1]);

        let mut t2 = s.begin(ProcessId(2));
        assert_eq!(s.read(&mut t2, Key(7)).unwrap(), None);
        s.commit(t2).unwrap();

        let mut t1 = s.begin(ProcessId(1));
        s.write(&mut t1, Key(7), 11).unwrap();
        let err = s.commit(t1).unwrap_err();
        assert!(err.is_abort(), "T1 must abort: {err:?}");
    }

    #[test]
    fn later_writer_does_not_conflict_with_earlier_reader() {
        let (s, clock) = store_with_manual();
        clock.script(ProcessId(2), vec![2]);
        clock.script(ProcessId(5), vec![5]);

        let mut t2 = s.begin(ProcessId(2));
        assert_eq!(s.read(&mut t2, Key(7)).unwrap(), None);
        s.commit(t2).unwrap();

        // A writer with a *larger* timestamp is fine.
        let mut t5 = s.begin(ProcessId(5));
        s.write(&mut t5, Key(7), 1).unwrap();
        s.commit(t5).unwrap();
    }

    #[test]
    fn write_write_conflicts_do_not_abort() {
        // Blind writes at distinct timestamps never conflict in multiversion
        // protocols (§8.4.2).
        let (s, clock) = store_with_manual();
        clock.script(ProcessId(1), vec![10]);
        clock.script(ProcessId(2), vec![11]);
        clock.script(ProcessId(3), vec![20]);
        let mut a = s.begin(ProcessId(1));
        let mut b = s.begin(ProcessId(2));
        s.write(&mut a, Key(3), 1).unwrap();
        s.write(&mut b, Key(3), 2).unwrap();
        s.commit(a).unwrap();
        s.commit(b).unwrap();
        // The version with the larger timestamp wins for future readers.
        let mut r = s.begin(ProcessId(3));
        assert_eq!(s.read(&mut r, Key(3)).unwrap(), Some(2));
        s.commit(r).unwrap();
    }
}
