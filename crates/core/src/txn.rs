//! Per-transaction state.

use mvtl_common::{Key, ProcessId, Timestamp, TsSet, TxId, TxStatus, TxnPin};

/// Locks a transaction holds on one key, as recorded on the transaction side.
///
/// The authoritative lock state lives in the per-key cell; this mirror exists
/// so that commit (Algorithm 1 line 13) can compute the candidate timestamp set
/// without re-latching every key, and so that abort/GC know what to release.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeldLocks {
    /// Timestamps read-locked on the key.
    pub read: TsSet,
    /// Timestamps write-locked on the key.
    pub write: TsSet,
}

impl HeldLocks {
    /// Union of read- and write-locked timestamps.
    #[must_use]
    pub fn any(&self) -> TsSet {
        self.read.union(&self.write)
    }
}

/// The per-key lock mirror of one transaction: a small linear-scan vector.
///
/// Transactions touch a handful of keys (the benchmark default is 4 ops), so
/// a `Vec` probe beats a `HashMap` — no hashing, no bucket allocation, and
/// the buffer's capacity is reused across the transaction's operations.
#[derive(Debug, Clone, Default)]
pub struct HeldMap {
    entries: Vec<(Key, HeldLocks)>,
}

impl HeldMap {
    /// Locks recorded for `key`, if any.
    #[must_use]
    pub fn get(&self, key: Key) -> Option<&HeldLocks> {
        self.entries
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, held)| held)
    }

    /// Exclusive access to the locks recorded for `key`, inserting an empty
    /// record when absent.
    fn entry_mut(&mut self, key: Key) -> &mut HeldLocks {
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == key) {
            return &mut self.entries[i].1;
        }
        self.entries.push((key, HeldLocks::default()));
        &mut self.entries.last_mut().expect("entry just pushed").1
    }

    /// Iterates over `(key, locks)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Key, &HeldLocks)> {
        self.entries.iter().map(|(k, held)| (*k, held))
    }

    /// Number of keys with recorded locks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no locks are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The policy-visible state of a transaction.
///
/// This corresponds to the `tx` record of Algorithm 1 plus the per-policy
/// variables of §5 (`tx.TS`, `tx.PrefTS`, `tx.PossTS`, the priority flag).
#[derive(Debug, Clone)]
pub struct TxState {
    /// Unique transaction id (lock owner).
    pub id: TxId,
    /// Process executing the transaction (timestamp tie-breaker).
    pub process: ProcessId,
    /// Lifecycle status.
    pub status: TxStatus,
    /// `tx.readset`: keys read and the version timestamp each read returned.
    pub read_set: Vec<(Key, Timestamp)>,
    /// `tx.writeset` keys (values are kept by [`crate::MvtlTransaction`], which
    /// owns the value type).
    pub write_keys: Vec<Key>,
    /// Locks held per key, mirrored from the per-key cells.
    pub held: HeldMap,
    /// The candidate timestamps the policy is still considering
    /// (`tx.TS` for ε-clock/MVTIL, `PossTS` for MVTL-Pref).
    pub ts_set: TsSet,
    /// The timestamp obtained from the clock at begin, when the policy uses one
    /// (`tx.TS` for MVTL-TO, `tx.PrefTS` for MVTL-Pref).
    pub start_ts: Option<Timestamp>,
    /// The commit timestamp chosen by `commit-locks`, if the policy picks one
    /// before the generic candidate intersection.
    pub chosen_ts: Option<Timestamp>,
    /// Whether this transaction is critical (MVTL-Prio §5.2).
    pub priority: bool,
    /// Clock value pinned by the caller (used by the verifier to replay the
    /// paper's schedules); `None` means "read the engine clock".
    pub pinned: Option<Timestamp>,
    /// The commit timestamp assigned when the transaction committed.
    pub commit_ts: Option<Timestamp>,
    /// Ticket in the store's active-transaction registry; taken back by the
    /// store when the transaction ends, so the GC watermark can advance.
    pub(crate) gc_pin: Option<TxnPin>,
}

impl TxState {
    /// Creates the state of a freshly begun transaction.
    #[must_use]
    pub fn new(process: ProcessId, pinned: Option<Timestamp>) -> Self {
        TxState {
            id: TxId::fresh(),
            process,
            status: TxStatus::Active,
            read_set: Vec::with_capacity(8),
            write_keys: Vec::with_capacity(4),
            held: HeldMap::default(),
            ts_set: TsSet::new(),
            start_ts: None,
            chosen_ts: None,
            priority: false,
            pinned,
            commit_ts: None,
            gc_pin: None,
        }
    }

    /// Whether the transaction is still active.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.status == TxStatus::Active
    }

    /// Records a committed read of `key` that observed `version`.
    pub fn record_read(&mut self, key: Key, version: Timestamp) {
        self.read_set.push((key, version));
    }

    /// Records locks granted on `key`.
    pub fn record_read_locks(&mut self, key: Key, granted: &TsSet) {
        if granted.is_empty() {
            return;
        }
        let held = self.held.entry_mut(key);
        held.read = held.read.union(granted);
    }

    /// Records write locks granted on `key`.
    pub fn record_write_locks(&mut self, key: Key, granted: &TsSet) {
        if granted.is_empty() {
            return;
        }
        let held = self.held.entry_mut(key);
        held.write = held.write.union(granted);
    }

    /// Forgets the unfrozen write locks recorded for every key (mirror of a
    /// "release all write locks" step in a policy).
    pub fn clear_write_locks(&mut self) {
        for (_, held) in &mut self.held.entries {
            held.write = TsSet::new();
        }
    }

    /// Locks held on `key`, if any.
    #[must_use]
    pub fn locks_on(&self, key: Key) -> Option<&HeldLocks> {
        self.held.get(key)
    }

    /// Every key on which the transaction holds (or held) locks.
    #[must_use]
    pub fn locked_keys(&self) -> Vec<Key> {
        let mut keys: Vec<Key> = self.held.iter().map(|(k, _)| k).collect();
        keys.sort();
        keys
    }

    /// Adds `key` to the write set if not already present.
    pub fn note_write_key(&mut self, key: Key) {
        if !self.write_keys.contains(&key) {
            self.write_keys.push(key);
        }
    }
}

/// A transaction handle returned by the `begin` of [`crate::MvtlStore`]
/// (via [`mvtl_common::TransactionalKV::begin`]).
///
/// It owns the buffered writes ("the write is not visible to other transactions
/// until the transaction commits", §4.3) and the policy-visible [`TxState`].
#[derive(Debug)]
pub struct MvtlTransaction<V> {
    /// Policy-visible state.
    pub(crate) state: TxState,
    /// Buffered writes, last value per key wins.
    pub(crate) write_values: Vec<(Key, V)>,
}

impl<V> MvtlTransaction<V> {
    pub(crate) fn new(state: TxState) -> Self {
        MvtlTransaction {
            state,
            write_values: Vec::with_capacity(4),
        }
    }

    /// The transaction id.
    #[must_use]
    pub fn id(&self) -> TxId {
        self.state.id
    }

    /// The policy-visible state (for inspection and tests).
    #[must_use]
    pub fn state(&self) -> &TxState {
        &self.state
    }

    /// Marks the transaction as critical (MVTL-Prio). Must be called before the
    /// first operation to have any effect on locking behaviour.
    pub fn set_priority(&mut self, critical: bool) {
        self.state.priority = critical;
    }

    pub(crate) fn buffer_write(&mut self, key: Key, value: V) {
        if let Some(slot) = self.write_values.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.write_values.push((key, value));
        }
        self.state.note_write_key(key);
    }

    /// The value this transaction has buffered for `key`, if it wrote it.
    #[must_use]
    pub fn pending_write(&self, key: Key) -> Option<&V> {
        self.write_values
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvtl_common::TsRange;

    #[test]
    fn record_and_query_locks() {
        let mut tx = TxState::new(ProcessId(1), None);
        assert!(tx.is_active());
        let r = TsSet::from_range(TsRange::new(Timestamp::at(1), Timestamp::at(5)));
        tx.record_read_locks(Key(9), &r);
        tx.record_write_locks(Key(9), &TsSet::from_point(Timestamp::at(7)));
        let held = tx.locks_on(Key(9)).unwrap();
        assert!(held.read.contains(Timestamp::at(3)));
        assert!(held.write.contains(Timestamp::at(7)));
        assert!(held.any().contains(Timestamp::at(3)));
        assert!(held.any().contains(Timestamp::at(7)));
        assert_eq!(tx.locked_keys(), vec![Key(9)]);

        tx.clear_write_locks();
        assert!(tx.locks_on(Key(9)).unwrap().write.is_empty());
        assert!(!tx.locks_on(Key(9)).unwrap().read.is_empty());
    }

    #[test]
    fn empty_grants_are_not_recorded() {
        let mut tx = TxState::new(ProcessId(0), None);
        tx.record_read_locks(Key(1), &TsSet::new());
        assert!(tx.locks_on(Key(1)).is_none());
    }

    #[test]
    fn held_map_is_keyed_not_ordered() {
        let mut tx = TxState::new(ProcessId(0), None);
        let point = TsSet::from_point(Timestamp::at(2));
        tx.record_read_locks(Key(7), &point);
        tx.record_read_locks(Key(3), &point);
        tx.record_read_locks(Key(7), &TsSet::from_point(Timestamp::at(4)));
        assert_eq!(tx.held.len(), 2);
        assert_eq!(tx.locked_keys(), vec![Key(3), Key(7)]);
        assert!(tx.locks_on(Key(7)).unwrap().read.contains(Timestamp::at(4)));
    }

    #[test]
    fn write_buffer_upserts() {
        let mut tx: MvtlTransaction<u64> = MvtlTransaction::new(TxState::new(ProcessId(0), None));
        tx.buffer_write(Key(1), 10);
        tx.buffer_write(Key(2), 20);
        tx.buffer_write(Key(1), 11);
        assert_eq!(tx.pending_write(Key(1)), Some(&11));
        assert_eq!(tx.pending_write(Key(2)), Some(&20));
        assert_eq!(tx.pending_write(Key(3)), None);
        assert_eq!(tx.state().write_keys, vec![Key(1), Key(2)]);
        assert_eq!(tx.write_values.len(), 2);
    }

    #[test]
    fn note_write_key_deduplicates() {
        let mut tx = TxState::new(ProcessId(0), None);
        tx.note_write_key(Key(4));
        tx.note_write_key(Key(4));
        assert_eq!(tx.write_keys, vec![Key(4)]);
    }
}
