//! Engine configuration.

use std::time::Duration;

/// Configuration of an [`crate::MvtlStore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MvtlConfig {
    /// How long an operation may wait for an unfrozen conflicting lock before
    /// the transaction is aborted with a lock timeout.
    ///
    /// Waiting with a timeout is the deadlock-resolution strategy discussed in
    /// §4.3 ("standard techniques for deadlock detection can be used ...
    /// timeout") and also what the paper's 2PL baseline does (§8.4.1).
    pub lock_wait_timeout: Duration,
    /// Number of shards in the key → cell map. More shards reduce contention on
    /// the map itself (the per-key latch is separate).
    pub shards: usize,
    /// How often a garbage-collection service attached to this store should
    /// sweep (purge old versions and lock entries). `None` — the default —
    /// means no background GC; state grows until `purge_below` is called
    /// manually. The store itself never spawns a thread: pass the config to
    /// `mvtl_gc::GcConfig::from_store_config` and spawn a `GcService` with
    /// the result (the registry does exactly that for `gc_ms` specs).
    pub gc_interval: Option<Duration>,
    /// Extra wall-clock slack a garbage collector keeps behind the current
    /// clock reading: the purge bound is `min(low_watermark, now − gc_lag)`,
    /// so recently committed versions stay readable by transactions that
    /// begin shortly after a sweep (§6's "timestamp service" lag).
    pub gc_lag: Duration,
}

impl Default for MvtlConfig {
    fn default() -> Self {
        MvtlConfig {
            lock_wait_timeout: Duration::from_millis(100),
            shards: 64,
            gc_interval: None,
            gc_lag: Duration::from_millis(50),
        }
    }
}

impl MvtlConfig {
    /// Returns a configuration with the given lock-wait timeout.
    #[must_use]
    pub fn with_lock_wait_timeout(mut self, timeout: Duration) -> Self {
        self.lock_wait_timeout = timeout;
        self
    }

    /// Returns a configuration with the given shard count (minimum 1).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Returns a configuration asking for background GC sweeps every
    /// `interval` (`None` disables background GC).
    #[must_use]
    pub fn with_gc_interval(mut self, interval: Option<Duration>) -> Self {
        self.gc_interval = interval;
        self
    }

    /// Returns a configuration with the given GC lag (slack kept behind the
    /// clock when computing the purge bound).
    #[must_use]
    pub fn with_gc_lag(mut self, lag: Duration) -> Self {
        self.gc_lag = lag;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sensible() {
        let c = MvtlConfig::default();
        assert!(c.lock_wait_timeout > Duration::ZERO);
        assert!(c.shards >= 1);
        assert_eq!(c.gc_interval, None, "GC is opt-in");
        assert!(c.gc_lag > Duration::ZERO);
    }

    #[test]
    fn builders() {
        let c = MvtlConfig::default()
            .with_lock_wait_timeout(Duration::from_secs(1))
            .with_shards(0)
            .with_gc_interval(Some(Duration::from_millis(100)))
            .with_gc_lag(Duration::from_millis(20));
        assert_eq!(c.lock_wait_timeout, Duration::from_secs(1));
        assert_eq!(c.shards, 1);
        assert_eq!(c.gc_interval, Some(Duration::from_millis(100)));
        assert_eq!(c.gc_lag, Duration::from_millis(20));
    }
}
