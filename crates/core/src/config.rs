//! Engine configuration.

use std::time::Duration;

/// Configuration of an [`crate::MvtlStore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MvtlConfig {
    /// How long an operation may wait for an unfrozen conflicting lock before
    /// the transaction is aborted with a lock timeout.
    ///
    /// Waiting with a timeout is the deadlock-resolution strategy discussed in
    /// §4.3 ("standard techniques for deadlock detection can be used ...
    /// timeout") and also what the paper's 2PL baseline does (§8.4.1).
    pub lock_wait_timeout: Duration,
    /// Number of shards in the key → cell map. More shards reduce contention on
    /// the map itself (the per-key latch is separate).
    pub shards: usize,
}

impl Default for MvtlConfig {
    fn default() -> Self {
        MvtlConfig {
            lock_wait_timeout: Duration::from_millis(100),
            shards: 64,
        }
    }
}

impl MvtlConfig {
    /// Returns a configuration with the given lock-wait timeout.
    #[must_use]
    pub fn with_lock_wait_timeout(mut self, timeout: Duration) -> Self {
        self.lock_wait_timeout = timeout;
        self
    }

    /// Returns a configuration with the given shard count (minimum 1).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sensible() {
        let c = MvtlConfig::default();
        assert!(c.lock_wait_timeout > Duration::ZERO);
        assert!(c.shards >= 1);
    }

    #[test]
    fn builders() {
        let c = MvtlConfig::default()
            .with_lock_wait_timeout(Duration::from_secs(1))
            .with_shards(0);
        assert_eq!(c.lock_wait_timeout, Duration::from_secs(1));
        assert_eq!(c.shards, 1);
    }
}
