//! Per-stripe cell state: lock table + version chain stored inline in the
//! stripe map.
// lint: hot-path
//!
//! The paper's implementation stores, per key, "two skip lists, one for
//! version state, one for lock state" under a per-entry latch (§8.1). Earlier
//! revisions of this crate mirrored that with a per-key `Arc<KeyCell>` (its
//! own mutex + condvar) inside sharded `HashMap`s; the hot path paid for a
//! shard rwlock, a map probe, an `Arc` clone and a second mutex on every
//! operation. Now a key's state is a plain [`KeyData`] embedded directly in
//! the stripe's open-addressed [`StripeMap`], guarded by the *stripe* latch,
//! and spill storage for version-heavy keys comes from the stripe's
//! [`ChainArena`].

use mvtl_locks::KeyLockState;
use mvtl_storage::{ArenaChain, ChainArena, StripeMap};

/// Per-key state: the interval lock table and the committed version chain.
#[derive(Debug)]
pub(crate) struct KeyData<V> {
    pub locks: KeyLockState,
    pub versions: ArenaChain<V>,
}

impl<V> Default for KeyData<V> {
    fn default() -> Self {
        KeyData {
            locks: KeyLockState::new(),
            versions: ArenaChain::default(),
        }
    }
}

impl<V: Clone> KeyData<V> {
    /// Whether the cell holds no state worth keeping (no locks, no versions):
    /// such cells are reclaimed by [`purge_below`](crate::MvtlStore::purge_below).
    ///
    /// A chain that has purged versions always retains at least the newest
    /// purged-below version, so reclaiming an idle cell never discards a
    /// purge bound a reader could still trip over.
    pub(crate) fn is_idle(&self) -> bool {
        self.locks.is_empty() && self.versions.is_empty()
    }
}

/// The state guarded by one stripe latch: the key → [`KeyData`] map plus the
/// arena recycling spill buffers for the stripe's version chains.
#[derive(Debug)]
pub(crate) struct CoreStripe<V> {
    pub map: StripeMap<KeyData<V>>,
    pub arena: ChainArena<V>,
}

impl<V> Default for CoreStripe<V> {
    fn default() -> Self {
        CoreStripe {
            map: StripeMap::new(),
            arena: ChainArena::new(),
        }
    }
}
