//! The per-key cell: lock state + version chain behind one latch.

use mvtl_locks::KeyLockState;
use mvtl_storage::VersionChain;
use parking_lot::{Condvar, Mutex};

/// Data protected by a key's latch.
///
/// The paper's implementation stores, per key, "two skip lists, one for version
/// state, one for lock state" under a per-entry latch (§8.1). Here the two
/// lists are the interval lock table and the version chain.
#[derive(Debug)]
pub(crate) struct KeyData<V> {
    pub locks: KeyLockState,
    pub versions: VersionChain<V>,
}

impl<V: Clone> KeyData<V> {
    pub(crate) fn new() -> Self {
        KeyData {
            locks: KeyLockState::new(),
            versions: VersionChain::new(),
        }
    }
}

/// A key cell: the latched data plus a condition variable used to wait for
/// unfrozen conflicting locks to be released or frozen.
#[derive(Debug)]
pub(crate) struct KeyCell<V> {
    pub data: Mutex<KeyData<V>>,
    pub changed: Condvar,
}

impl<V: Clone> KeyCell<V> {
    pub(crate) fn new() -> Self {
        KeyCell {
            data: Mutex::named("core.cell.data", 62, KeyData::new()),
            changed: Condvar::new(),
        }
    }

    /// Wakes every transaction waiting on this key (called after releasing or
    /// freezing locks, or installing a version).
    pub(crate) fn notify(&self) {
        self.changed.notify_all();
    }
}
