//! # mvtl-core
//!
//! The generic **multiversion timestamp locking** (MVTL) engine of the PODC'18
//! paper *"Locking Timestamps versus Locking Objects"*, together with every
//! specialized policy the paper describes.
//!
//! ## The idea
//!
//! MVTL "uses locks as in lock-based algorithms, but locks individual
//! timestamps of objects, rather than entire objects at a time. A transaction
//! is allowed to commit if it can find at least one timestamp that it managed
//! to lock across all its objects" (§1). The engine here implements Algorithm 1
//! verbatim; the non-deterministic choices of Algorithm 2 (which timestamps to
//! lock, whether to wait, which commit timestamp to pick, whether to garbage
//! collect) are captured by the [`LockingPolicy`] trait, and each policy module
//! pins those choices to obtain the algorithms of §5:
//!
//! | Policy | Paper | Benefit |
//! |--------|-------|---------|
//! | [`policy::ToPolicy`] | MVTL-TO (Alg. 8, Thm. 5) | behaves exactly like MVTO+ |
//! | [`policy::GhostbusterPolicy`] | MVTL-Ghostbuster (Alg. 10, Thm. 7) | no ghost aborts |
//! | [`policy::EpsilonPolicy`] | MVTL-ε-clock (Alg. 4/7, Thm. 4) | no serial aborts with ε-synchronized clocks |
//! | [`policy::PrefPolicy`] | MVTL-Pref (Alg. 3/5, Thm. 2) | commits strictly more workloads than MVTO+ |
//! | [`policy::PrioPolicy`] | MVTL-Prio (Alg. 6, Thm. 3) | critical transactions never aborted by normal ones |
//! | [`policy::PessimisticPolicy`] | MVTL-Pessimistic (Alg. 9, Thm. 6) | behaves like pessimistic 2PL |
//! | [`policy::MvtilPolicy`] | MVTIL (§8) | the interval-locking variant evaluated in the paper |
//!
//! ## Structure
//!
//! * [`MvtlStore`] — the storage engine: a striped open-addressed map from
//!   keys to inline per-key cells, each holding the interval lock state
//!   ([`mvtl_locks::KeyLockState`]) and an arena-backed version chain
//!   ([`mvtl_storage::ArenaChain`]) behind the stripe's latch, mirroring the
//!   paper's per-key latched hash table (§8.1) without per-key allocation.
//! * [`TxState`] / [`MvtlTransaction`] — per-transaction bookkeeping: read set,
//!   write set, locks held, candidate timestamps.
//! * [`LockingPolicy`] / [`PolicyCtx`] — the policy interface mirroring
//!   Algorithm 2.
//!
//! ## Quick start
//!
//! ```
//! use mvtl_clock::GlobalClock;
//! use mvtl_common::{Key, ProcessId, TransactionalKV};
//! use mvtl_core::{MvtlConfig, MvtlStore, policy::MvtilPolicy};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), mvtl_common::TxError> {
//! let store: MvtlStore<u64, _> = MvtlStore::new(
//!     MvtilPolicy::early(1000),
//!     Arc::new(GlobalClock::new()),
//!     MvtlConfig::default(),
//! );
//!
//! let mut tx = store.begin(ProcessId(0));
//! store.write(&mut tx, Key(1), 42)?;
//! store.commit(tx)?;
//!
//! let mut tx = store.begin(ProcessId(1));
//! assert_eq!(store.read(&mut tx, Key(1))?, Some(42));
//! store.commit(tx)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cell;
mod config;
pub mod policy;
mod store;
mod txn;

pub use config::MvtlConfig;
pub use mvtl_common::StoreStats;
pub use policy::{LockingPolicy, PolicyCtx, ReadGrant};
pub use store::{MvtlStore, PreparedCommit};
pub use txn::{MvtlTransaction, TxState};
