//! The MVTL storage engine (Algorithm 1).

use crate::cell::KeyCell;
use crate::policy::{LockingPolicy, PolicyCtx, ReadGrant};
use crate::txn::{HeldLocks, MvtlTransaction, TxState};
use crate::MvtlConfig;
use mvtl_clock::ClockSource;
use mvtl_common::{
    AbortReason, CommitInfo, Key, LockMode, ProcessId, Timestamp, TransactionalKV, TsRange, TsSet,
    TxError, TxStatus,
};
use parking_lot::RwLock;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Instant;

/// Aggregate state-size statistics of a store, used by the Figure 6 experiment
/// ("number of locks and versions as time passes").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of keys that have been touched at least once.
    pub keys: usize,
    /// Total committed versions currently stored.
    pub versions: usize,
    /// Total versions removed by purging so far.
    pub purged_versions: usize,
    /// Total interval lock entries currently stored.
    pub lock_entries: usize,
    /// How many of those lock entries are frozen.
    pub frozen_lock_entries: usize,
}

/// A transaction that passed the participant half of the §7 distributed
/// commit on one [`MvtlStore`]: commit-time locks are acquired and the
/// interval the policy is willing to commit at is frozen.
///
/// Produced by [`MvtlStore::prepare_commit`]; consumed by
/// [`MvtlStore::commit_prepared`] (with a timestamp inside
/// [`PreparedCommit::interval`]) or [`MvtlStore::abort_prepared`]. The
/// transaction keeps all its locks while prepared, so no other transaction can
/// invalidate the frozen interval in the meantime.
#[derive(Debug)]
pub struct PreparedCommit<V> {
    txn: MvtlTransaction<V>,
    interval: TsSet,
}

impl<V> PreparedCommit<V> {
    /// The frozen interval: every timestamp the store guarantees this
    /// transaction can commit at. Never empty.
    #[must_use]
    pub fn interval(&self) -> &TsSet {
        &self.interval
    }

    /// The id of the prepared transaction.
    #[must_use]
    pub fn id(&self) -> mvtl_common::TxId {
        self.txn.id()
    }
}

/// The generic MVTL storage engine, parameterized by a [`LockingPolicy`].
///
/// `V` is the value type stored in versions. The engine is safe to share across
/// threads (`&self` methods take per-key latches internally), mirroring the
/// multi-threaded server of the paper's implementation (§8.1).
pub struct MvtlStore<V, P> {
    policy: P,
    clock: Arc<dyn ClockSource>,
    config: MvtlConfig,
    shards: Vec<RwLock<HashMap<Key, Arc<KeyCell<V>>>>>,
}

impl<V, P> MvtlStore<V, P>
where
    V: Clone + Send + Sync + 'static,
    P: LockingPolicy,
{
    /// Creates a store with the given policy, clock source and configuration.
    #[must_use]
    pub fn new(policy: P, clock: Arc<dyn ClockSource>, config: MvtlConfig) -> Self {
        let shards = (0..config.shards.max(1))
            .map(|_| RwLock::new(HashMap::new()))
            .collect();
        MvtlStore {
            policy,
            clock,
            config,
            shards,
        }
    }

    /// The policy driving this store.
    #[must_use]
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &MvtlConfig {
        &self.config
    }

    /// Begins a transaction, optionally pinning the clock value it observes and
    /// optionally marking it critical (MVTL-Prio §5.2).
    #[must_use]
    pub fn begin_with(
        &self,
        process: ProcessId,
        pinned: Option<Timestamp>,
        priority: bool,
    ) -> MvtlTransaction<V> {
        let mut state = TxState::new(process, pinned);
        state.priority = priority;
        self.policy.init(self, &mut state);
        MvtlTransaction::new(state)
    }

    /// Begins a critical (high-priority) transaction; only meaningful with
    /// [`crate::policy::PrioPolicy`].
    #[must_use]
    pub fn begin_critical(&self, process: ProcessId) -> MvtlTransaction<V> {
        self.begin_with(process, None, true)
    }

    /// Reads `key` within the transaction (Algorithm 1, `read`).
    ///
    /// Returns the transaction's own buffered write if it previously wrote the
    /// key, otherwise the committed version selected by the policy, or `None`
    /// for the initial `⊥` version.
    ///
    /// # Errors
    ///
    /// Returns an abort error if the policy could not acquire the read locks it
    /// needs; the transaction is aborted in that case.
    pub fn read(&self, txn: &mut MvtlTransaction<V>, key: Key) -> Result<Option<V>, TxError> {
        if !txn.state.is_active() {
            return Err(TxError::TransactionFinished);
        }
        if let Some(v) = txn.pending_write(key) {
            return Ok(Some(v.clone()));
        }
        match self.policy.read_locks(self, &mut txn.state, key) {
            Ok(version) => {
                txn.state.read_set.push((key, version));
                if version.is_zero() {
                    return Ok(None);
                }
                let cell = self.cell(key);
                let data = cell.data.lock();
                Ok(data.versions.at(version).cloned())
            }
            Err(err) => {
                self.abort_internal(&mut txn.state);
                Err(err)
            }
        }
    }

    /// Writes `value` to `key` within the transaction (Algorithm 1, `write`).
    /// The value stays buffered in the transaction until commit.
    ///
    /// # Errors
    ///
    /// Returns an abort error if the policy acquires write locks eagerly and
    /// fails; the transaction is aborted in that case.
    pub fn write(&self, txn: &mut MvtlTransaction<V>, key: Key, value: V) -> Result<(), TxError> {
        if !txn.state.is_active() {
            return Err(TxError::TransactionFinished);
        }
        match self.policy.write_locks(self, &mut txn.state, key) {
            Ok(()) => {
                txn.buffer_write(key, value);
                Ok(())
            }
            Err(err) => {
                self.abort_internal(&mut txn.state);
                Err(err)
            }
        }
    }

    /// Attempts to commit the transaction (Algorithm 1, `commit`).
    ///
    /// # Errors
    ///
    /// Returns an abort error when no single timestamp is locked across all
    /// accessed keys (line 14), or when the policy's commit-time locking fails.
    pub fn commit(&self, mut txn: MvtlTransaction<V>) -> Result<CommitInfo, TxError> {
        if !txn.state.is_active() {
            return Err(TxError::TransactionFinished);
        }
        if let Err(err) = self.policy.commit_locks(self, &mut txn.state) {
            self.abort_internal(&mut txn.state);
            return Err(err);
        }
        // Line 13: find the timestamps locked across every accessed key.
        let candidates = self.commit_candidates(&txn.state);
        let chosen = if candidates.is_empty() {
            None
        } else {
            self.policy.commit_ts(&txn.state, &candidates)
        };
        let commit_ts = match chosen {
            Some(t) if candidates.contains(t) => t,
            _ => {
                self.abort_internal(&mut txn.state);
                return Err(TxError::aborted(AbortReason::NoCommonTimestamp));
            }
        };
        Ok(self.finish_commit(txn, commit_ts))
    }

    /// Runs the participant side of the §7 distributed commit: performs the
    /// policy's commit-time locking, computes the candidate timestamps of
    /// Algorithm 1 line 13, and *freezes* the interval the policy is willing
    /// to commit at ([`LockingPolicy::prepared_interval`]). The transaction
    /// keeps all its locks, so the frozen interval cannot be invalidated until
    /// the coordinator calls [`MvtlStore::commit_prepared`] or
    /// [`MvtlStore::abort_prepared`].
    ///
    /// # Errors
    ///
    /// Returns an abort error when the policy's commit-time locking fails or
    /// the frozen interval is empty; the transaction is fully aborted (locks
    /// released) in that case.
    pub fn prepare_commit(
        &self,
        mut txn: MvtlTransaction<V>,
    ) -> Result<PreparedCommit<V>, TxError> {
        if !txn.state.is_active() {
            return Err(TxError::TransactionFinished);
        }
        if let Err(err) = self.policy.commit_locks(self, &mut txn.state) {
            self.abort_internal(&mut txn.state);
            return Err(err);
        }
        let candidates = self.commit_candidates(&txn.state);
        let interval = self.policy.prepared_interval(&txn.state, &candidates);
        if interval.is_empty() {
            self.abort_internal(&mut txn.state);
            return Err(TxError::aborted(AbortReason::NoCommonTimestamp));
        }
        Ok(PreparedCommit { txn, interval })
    }

    /// Commits a prepared transaction at `commit_ts`, which the coordinator
    /// picked from the intersection of every participant's frozen interval.
    ///
    /// # Errors
    ///
    /// Returns an abort error when `commit_ts` lies outside the frozen
    /// interval reported by [`MvtlStore::prepare_commit`]; the transaction is
    /// fully aborted in that case. A timestamp inside the interval always
    /// succeeds, because the transaction still holds all the locks backing it.
    pub fn commit_prepared(
        &self,
        prepared: PreparedCommit<V>,
        commit_ts: Timestamp,
    ) -> Result<CommitInfo, TxError> {
        let PreparedCommit { mut txn, interval } = prepared;
        if !interval.contains(commit_ts) {
            self.abort_internal(&mut txn.state);
            return Err(TxError::aborted(AbortReason::NoCommonTimestamp));
        }
        Ok(self.finish_commit(txn, commit_ts))
    }

    /// Aborts a prepared transaction, releasing its locks on this store (the
    /// coordinator's empty-intersection path).
    pub fn abort_prepared(&self, prepared: PreparedCommit<V>) {
        let mut txn = prepared.txn;
        self.abort_internal(&mut txn.state);
    }

    /// The commit tail shared by [`MvtlStore::commit`] and
    /// [`MvtlStore::commit_prepared`]: installs versions, freezes write locks
    /// at `commit_ts` and garbage collects per policy. `commit_ts` must be a
    /// member of the transaction's commit candidates.
    fn finish_commit(&self, mut txn: MvtlTransaction<V>, commit_ts: Timestamp) -> CommitInfo {
        // Lines 17-19: freeze the write locks at the commit timestamp and
        // expose the committed values. Both happen under the key's latch so
        // that observers never see a frozen write lock without its version.
        for (key, value) in std::mem::take(&mut txn.write_values) {
            let cell = self.cell(key);
            {
                let mut data = cell.data.lock();
                data.locks
                    .freeze(txn.state.id, LockMode::Write, TsRange::point(commit_ts));
                data.versions.install(commit_ts, value);
            }
            cell.notify();
        }
        txn.state.status = TxStatus::Committed;
        txn.state.commit_ts = Some(commit_ts);
        // Line 21: optional garbage collection.
        if self.policy.commit_gc(&txn.state) {
            self.gc_transaction(&txn.state, commit_ts);
        }
        CommitInfo {
            tx: txn.state.id,
            commit_ts: Some(commit_ts),
            reads: txn.state.read_set.clone(),
            writes: txn.state.write_keys.clone(),
        }
    }

    /// Aborts the transaction, releasing its locks according to the policy.
    pub fn abort(&self, mut txn: MvtlTransaction<V>) {
        if txn.state.is_active() {
            self.abort_internal(&mut txn.state);
        }
    }

    /// Garbage collection for an ended transaction (Algorithm 1, `gc`): freeze
    /// the read locks between each version read and the commit timestamp, then
    /// release every remaining unfrozen lock.
    fn gc_transaction(&self, tx: &TxState, commit_ts: Timestamp) {
        for (key, version) in &tx.read_set {
            let start = version.succ();
            if start > commit_ts {
                continue;
            }
            let cell = self.cell(*key);
            {
                let mut data = cell.data.lock();
                data.locks
                    .freeze(tx.id, LockMode::Read, TsRange::new(start, commit_ts));
            }
            cell.notify();
        }
        for key in tx.locked_keys() {
            let cell = self.cell(key);
            {
                let mut data = cell.data.lock();
                data.locks.release_unfrozen(tx.id);
            }
            cell.notify();
        }
    }

    fn abort_internal(&self, tx: &mut TxState) {
        let release_reads = self.policy.release_read_locks_on_abort();
        for key in tx.locked_keys() {
            let cell = self.cell(key);
            {
                let mut data = cell.data.lock();
                if release_reads {
                    data.locks.release_unfrozen(tx.id);
                } else {
                    // Emulating MVTO+: pending writes disappear but the
                    // read-timestamp footprint (read locks) stays behind.
                    data.locks
                        .release_unfrozen_range(tx.id, LockMode::Write, TsRange::all());
                }
            }
            cell.notify();
        }
        tx.status = TxStatus::Aborted;
    }

    /// The candidate commit timestamps of Algorithm 1 line 13: timestamps `t`
    /// such that every read key is covered contiguously from the version read
    /// up to `t` by locks the transaction holds, and every written key is
    /// write-locked at `t`.
    fn commit_candidates(&self, tx: &TxState) -> TsSet {
        // Timestamp::ZERO is reserved for the initial ⊥ version, so no
        // transaction may serialize there.
        let mut candidates =
            TsSet::from_range(TsRange::new(Timestamp::ZERO.succ(), Timestamp::MAX));
        for (key, version) in &tx.read_set {
            let held = tx.locks_on(*key).map(HeldLocks::any).unwrap_or_default();
            let start = version.succ();
            let mut allowed = TsSet::new();
            for range in held.ranges() {
                if range.contains(start) {
                    allowed = TsSet::from_range(TsRange::new(start, range.end));
                    break;
                }
            }
            candidates = candidates.intersection(&allowed);
            if candidates.is_empty() {
                return candidates;
            }
        }
        for key in &tx.write_keys {
            let write_held = tx
                .locks_on(*key)
                .map(|h| h.write.clone())
                .unwrap_or_default();
            candidates = candidates.intersection(&write_held);
            if candidates.is_empty() {
                return candidates;
            }
        }
        candidates
    }

    /// Purges versions (and the associated lock state) older than `bound`,
    /// keeping the most recent version of each key (§6, §8.1). Returns the
    /// number of versions and lock entries removed.
    pub fn purge_below(&self, bound: Timestamp) -> (usize, usize) {
        let mut versions_removed = 0;
        let mut locks_removed = 0;
        for shard in &self.shards {
            let cells: Vec<Arc<KeyCell<V>>> = shard.read().values().cloned().collect();
            for cell in cells {
                let mut data = cell.data.lock();
                versions_removed += data.versions.purge_below(bound);
                locks_removed += data.locks.purge_below(bound);
                drop(data);
                cell.notify();
            }
        }
        (versions_removed, locks_removed)
    }

    /// Aggregate state-size statistics across all keys.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        let mut stats = StoreStats::default();
        for shard in &self.shards {
            let cells: Vec<Arc<KeyCell<V>>> = shard.read().values().cloned().collect();
            for cell in cells {
                let data = cell.data.lock();
                stats.keys += 1;
                let vs = data.versions.stats();
                stats.versions += vs.versions;
                stats.purged_versions += vs.purged;
                let ls = data.locks.stats();
                stats.lock_entries += ls.entries;
                stats.frozen_lock_entries += ls.frozen_entries;
            }
        }
        stats
    }

    /// The committed value of `key` at the latest version strictly before
    /// `before`, outside of any transaction. Intended for examples, tests and
    /// debugging; regular access goes through transactions.
    #[must_use]
    pub fn snapshot_read(&self, key: Key, before: Timestamp) -> Option<V> {
        let cell = self.cell(key);
        let data = cell.data.lock();
        match data.versions.latest_before(before) {
            Ok((_, v)) => v,
            Err(_) => None,
        }
    }

    fn shard_for(&self, key: Key) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }

    fn cell(&self, key: Key) -> Arc<KeyCell<V>> {
        let shard = &self.shards[self.shard_for(key)];
        if let Some(cell) = shard.read().get(&key) {
            return Arc::clone(cell);
        }
        let mut map = shard.write();
        Arc::clone(map.entry(key).or_insert_with(|| Arc::new(KeyCell::new())))
    }
}

impl<V, P> PolicyCtx for MvtlStore<V, P>
where
    V: Clone + Send + Sync + 'static,
    P: LockingPolicy,
{
    fn clock_value(&self, tx: &TxState, process: ProcessId) -> u64 {
        match tx.pinned {
            Some(ts) => ts.value,
            None => self.clock.now(process),
        }
    }

    fn acquire_read_interval(
        &self,
        tx: &mut TxState,
        key: Key,
        anchor_below: Timestamp,
        mut upper: Timestamp,
        wait: bool,
    ) -> Result<ReadGrant, TxError> {
        let cell = self.cell(key);
        let deadline = Instant::now() + self.config.lock_wait_timeout;
        let mut data = cell.data.lock();
        loop {
            let anchor = match data.versions.latest_before(anchor_below) {
                Ok((t, _)) => t,
                Err(bound) => {
                    return Err(TxError::aborted(AbortReason::VersionPurged {
                        key,
                        below: bound,
                    }))
                }
            };
            if upper < anchor.succ() {
                return Ok(ReadGrant {
                    version: anchor,
                    granted: TsSet::new(),
                });
            }
            let desired = TsRange::new(anchor.succ(), upper);
            let analysis = data.locks.analyze(tx.id, LockMode::Read, desired);
            if analysis.hit_frozen() {
                // A frozen write lock inside the window means a newer version
                // exists (or is sealed) there; shrink the window to end just
                // below it and retry, re-anchoring on the newer version when
                // it is visible.
                let frozen_at = analysis
                    .first_frozen()
                    .expect("hit_frozen implies a frozen point");
                if frozen_at <= anchor.succ() {
                    return Ok(ReadGrant {
                        version: anchor,
                        granted: TsSet::new(),
                    });
                }
                upper = frozen_at.pred();
                continue;
            }
            if !analysis.blocked_unfrozen.is_empty() {
                if wait {
                    if cell.changed.wait_until(&mut data, deadline).timed_out() {
                        return Err(TxError::aborted(AbortReason::LockTimeout { key }));
                    }
                    continue;
                }
                // No waiting: lock only the contiguous prefix that is free.
                let granted = match analysis.contiguous_grantable_end(anchor.succ()) {
                    None => TsSet::new(),
                    Some(end) => TsSet::from_range(TsRange::new(anchor.succ(), end)),
                };
                data.locks.acquire(tx.id, LockMode::Read, &granted);
                tx.record_read_locks(key, &granted);
                return Ok(ReadGrant {
                    version: anchor,
                    granted,
                });
            }
            let granted = analysis.grantable;
            data.locks.acquire(tx.id, LockMode::Read, &granted);
            tx.record_read_locks(key, &granted);
            return Ok(ReadGrant {
                version: anchor,
                granted,
            });
        }
    }

    fn acquire_write_range(
        &self,
        tx: &mut TxState,
        key: Key,
        desired: TsRange,
        wait: bool,
    ) -> Result<TsSet, TxError> {
        let cell = self.cell(key);
        let deadline = Instant::now() + self.config.lock_wait_timeout;
        let mut data = cell.data.lock();
        loop {
            let analysis = data.locks.analyze(tx.id, LockMode::Write, desired);
            if wait && !analysis.blocked_unfrozen.is_empty() {
                if cell.changed.wait_until(&mut data, deadline).timed_out() {
                    return Err(TxError::aborted(AbortReason::LockTimeout { key }));
                }
                continue;
            }
            let granted = analysis.grantable;
            data.locks.acquire(tx.id, LockMode::Write, &granted);
            tx.record_write_locks(key, &granted);
            return Ok(granted);
        }
    }

    fn release_unfrozen_write_locks(&self, tx: &mut TxState) {
        for key in tx.locked_keys() {
            let has_writes = tx
                .locks_on(key)
                .map(|h| !h.write.is_empty())
                .unwrap_or(false);
            if !has_writes {
                continue;
            }
            let cell = self.cell(key);
            {
                let mut data = cell.data.lock();
                data.locks
                    .release_unfrozen_range(tx.id, LockMode::Write, TsRange::all());
            }
            cell.notify();
        }
        tx.clear_write_locks();
    }

    fn latest_version_before(&self, key: Key, below: Timestamp) -> Result<Timestamp, TxError> {
        let cell = self.cell(key);
        let data = cell.data.lock();
        match data.versions.latest_before(below) {
            Ok((t, _)) => Ok(t),
            Err(bound) => Err(TxError::aborted(AbortReason::VersionPurged {
                key,
                below: bound,
            })),
        }
    }
}

impl<V, P> TransactionalKV<V> for MvtlStore<V, P>
where
    V: Clone + Send + Sync + 'static,
    P: LockingPolicy,
{
    type Txn = MvtlTransaction<V>;

    fn begin_at(&self, process: ProcessId, pinned: Option<Timestamp>) -> Self::Txn {
        self.begin_with(process, pinned, false)
    }

    fn read(&self, txn: &mut Self::Txn, key: Key) -> Result<Option<V>, TxError> {
        MvtlStore::read(self, txn, key)
    }

    fn write(&self, txn: &mut Self::Txn, key: Key, value: V) -> Result<(), TxError> {
        MvtlStore::write(self, txn, key, value)
    }

    fn commit(&self, txn: Self::Txn) -> Result<CommitInfo, TxError> {
        MvtlStore::commit(self, txn)
    }

    fn abort(&self, txn: Self::Txn) {
        MvtlStore::abort(self, txn);
    }

    fn name(&self) -> &'static str {
        self.policy.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ToPolicy;
    use mvtl_clock::GlobalClock;

    fn store() -> MvtlStore<u64, ToPolicy> {
        MvtlStore::new(
            ToPolicy::new(),
            Arc::new(GlobalClock::new()),
            MvtlConfig::default(),
        )
    }

    #[test]
    fn read_your_own_writes() {
        let s = store();
        let mut tx = s.begin(ProcessId(0));
        s.write(&mut tx, Key(1), 7).unwrap();
        assert_eq!(s.read(&mut tx, Key(1)).unwrap(), Some(7));
        s.commit(tx).unwrap();
    }

    #[test]
    fn operations_on_finished_transactions_fail() {
        let s = store();
        let mut tx = s.begin(ProcessId(0));
        s.write(&mut tx, Key(1), 7).unwrap();
        let info = s.commit(tx).unwrap();
        assert_eq!(info.writes, vec![Key(1)]);

        let mut tx2 = s.begin(ProcessId(0));
        s.abort(tx2);
        tx2 = s.begin(ProcessId(0));
        let _ = s.read(&mut tx2, Key(1)).unwrap();
        s.commit(tx2).unwrap();
    }

    #[test]
    fn snapshot_read_sees_committed_state() {
        let s = store();
        let mut tx = s.begin(ProcessId(0));
        s.write(&mut tx, Key(5), 99).unwrap();
        s.commit(tx).unwrap();
        assert_eq!(s.snapshot_read(Key(5), Timestamp::MAX), Some(99));
        assert_eq!(s.snapshot_read(Key(6), Timestamp::MAX), None);
    }

    #[test]
    fn stats_count_state() {
        let s = store();
        for i in 0..5u64 {
            let mut tx = s.begin(ProcessId(0));
            s.write(&mut tx, Key(i), i).unwrap();
            s.commit(tx).unwrap();
        }
        let stats = s.stats();
        assert_eq!(stats.keys, 5);
        assert_eq!(stats.versions, 5);
        assert!(stats.lock_entries >= 5);
        assert!(stats.frozen_lock_entries >= 5);
    }

    #[test]
    fn prepare_then_commit_at_coordinator_timestamp() {
        let s = store();
        let mut tx = s.begin(ProcessId(0));
        s.write(&mut tx, Key(1), 7).unwrap();
        let prepared = s.prepare_commit(tx).unwrap();
        let interval = prepared.interval().clone();
        assert!(!interval.is_empty());
        let ts = interval.min().unwrap();
        let info = s.commit_prepared(prepared, ts).unwrap();
        assert_eq!(info.commit_ts, Some(ts));
        assert_eq!(s.snapshot_read(Key(1), Timestamp::MAX), Some(7));
    }

    #[test]
    fn commit_prepared_outside_the_frozen_interval_aborts() {
        let s = store();
        let mut tx = s.begin(ProcessId(0));
        s.write(&mut tx, Key(2), 9).unwrap();
        let prepared = s.prepare_commit(tx).unwrap();
        let outside = prepared.interval().max().unwrap().succ();
        let err = s.commit_prepared(prepared, outside).unwrap_err();
        assert!(err.is_abort());
        // The failed transaction released its locks: a writer succeeds now.
        let mut tx = s.begin(ProcessId(1));
        s.write(&mut tx, Key(2), 10).unwrap();
        s.commit(tx).unwrap();
    }

    #[test]
    fn abort_prepared_releases_locks() {
        let s = store();
        let before = s.stats().lock_entries;
        let mut tx = s.begin(ProcessId(0));
        s.write(&mut tx, Key(3), 1).unwrap();
        let prepared = s.prepare_commit(tx).unwrap();
        assert!(s.stats().lock_entries > before, "prepared txn holds locks");
        s.abort_prepared(prepared);
        assert_eq!(s.stats().lock_entries, before);
        assert_eq!(s.snapshot_read(Key(3), Timestamp::MAX), None);
    }

    #[test]
    fn purge_removes_old_versions() {
        let s = store();
        for round in 0..3u64 {
            let mut tx = s.begin(ProcessId(0));
            s.write(&mut tx, Key(1), round).unwrap();
            s.commit(tx).unwrap();
        }
        assert_eq!(s.stats().versions, 3);
        let (versions_removed, _locks_removed) = s.purge_below(Timestamp::MAX);
        assert_eq!(versions_removed, 2);
        assert_eq!(s.stats().versions, 1);
        // The latest value is still readable.
        let mut tx = s.begin(ProcessId(0));
        assert_eq!(s.read(&mut tx, Key(1)).unwrap(), Some(2));
        s.commit(tx).unwrap();
    }
}
