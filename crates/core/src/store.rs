//! The MVTL storage engine (Algorithm 1).

use crate::cell::{CoreStripe, KeyData};
use crate::policy::{LockingPolicy, PolicyCtx, ReadGrant};
use crate::txn::{HeldLocks, MvtlTransaction, TxState};
use crate::MvtlConfig;
use mvtl_clock::ClockSource;
use mvtl_common::{
    AbortReason, ActiveTxnRegistry, CommitInfo, Key, LockMode, ProcessId, StoreStats, Timestamp,
    TransactionalKV, TsRange, TsSet, TxError, TxStatus,
};
use mvtl_storage::{ChainArena, StripedTable};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// Process id that recovered transactions run under. It only matters as a
/// lock owner tie-breaker; real processes are numbered from zero and never
/// reach it.
const RECOVERY_PROCESS: ProcessId = ProcessId(u32::MAX);

/// A transaction that passed the participant half of the §7 distributed
/// commit on one [`MvtlStore`]: commit-time locks are acquired and the
/// interval the policy is willing to commit at is frozen.
///
/// Produced by [`MvtlStore::prepare_commit`]; consumed by
/// [`MvtlStore::commit_prepared`] (with a timestamp inside
/// [`PreparedCommit::interval`]) or [`MvtlStore::abort_prepared`]. The
/// transaction keeps all its locks while prepared, so no other transaction can
/// invalidate the frozen interval in the meantime.
#[derive(Debug)]
pub struct PreparedCommit<V> {
    txn: MvtlTransaction<V>,
    interval: TsSet,
}

impl<V> PreparedCommit<V> {
    /// The frozen interval: every timestamp the store guarantees this
    /// transaction can commit at. Never empty.
    #[must_use]
    pub fn interval(&self) -> &TsSet {
        &self.interval
    }

    /// The id of the prepared transaction.
    #[must_use]
    pub fn id(&self) -> mvtl_common::TxId {
        self.txn.id()
    }
}

/// The generic MVTL storage engine, parameterized by a [`LockingPolicy`].
///
/// `V` is the value type stored in versions. The engine is safe to share across
/// threads (`&self` methods take per-stripe latches internally), mirroring the
/// multi-threaded server of the paper's implementation (§8.1).
///
/// Key state lives inline in striped open-addressed maps: an operation routes
/// to a stripe, takes that stripe's mutex, and works on the entry in place —
/// there is no per-key `Arc`, no shard rwlock in front of a per-key mutex,
/// and version storage beyond a small inline capacity comes from a per-stripe
/// arena of recycled buffers.
pub struct MvtlStore<V, P> {
    policy: P,
    clock: Arc<dyn ClockSource>,
    config: MvtlConfig,
    cells: StripedTable<CoreStripe<V>>,
    /// In-flight transactions and the lowest timestamp each may still anchor
    /// a read on; its minimum is the store's GC [low
    /// watermark](MvtlStore::low_watermark).
    active: ActiveTxnRegistry,
}

impl<V, P> MvtlStore<V, P>
where
    V: Clone + Send + Sync + 'static,
    P: LockingPolicy,
{
    /// Creates a store with the given policy, clock source and configuration.
    #[must_use]
    pub fn new(policy: P, clock: Arc<dyn ClockSource>, config: MvtlConfig) -> Self {
        let cells = StripedTable::build(config.shards.max(1), |stripe| {
            Mutex::named("core.store.stripe", 60, stripe)
        });
        MvtlStore {
            policy,
            clock,
            config,
            cells,
            active: ActiveTxnRegistry::new(),
        }
    }

    /// The policy driving this store.
    #[must_use]
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &MvtlConfig {
        &self.config
    }

    /// Runs `f` on `key`'s cell (created when absent) and the stripe's arena
    /// under the stripe latch, then wakes the stripe's waiters once the latch
    /// is released — for operations that release or freeze locks, or install
    /// versions.
    #[inline]
    fn with_cell_notify<R>(
        &self,
        key: Key,
        f: impl FnOnce(&mut KeyData<V>, &mut ChainArena<V>) -> R,
    ) -> R {
        let stripe = self.cells.stripe_for(key);
        let result = {
            let mut guard = stripe.data.lock();
            let CoreStripe { map, arena } = &mut *guard;
            f(map.get_or_insert_with(key, KeyData::default), arena)
        };
        stripe.notify();
        result
    }

    /// Begins a transaction, optionally pinning the clock value it observes and
    /// optionally marking it critical (MVTL-Prio §5.2).
    #[must_use]
    pub fn begin_with(
        &self,
        process: ProcessId,
        pinned: Option<Timestamp>,
        priority: bool,
    ) -> MvtlTransaction<V> {
        let mut state = TxState::new(process, pinned);
        state.priority = priority;
        self.policy.init(self, &mut state);
        // Register the transaction with the GC watermark. The pin must not
        // exceed any timestamp the transaction might anchor a read on, so take
        // the minimum of everything the policy set up at init: its start
        // timestamp and its candidate set (ε-clock reaches ε below "now",
        // MVTL-Pref can carry negative offsets).
        let mut pin_ts = state.start_ts.or(pinned).unwrap_or(Timestamp::MAX);
        if let Some(lo) = state.ts_set.min() {
            pin_ts = pin_ts.min(lo);
        }
        if pin_ts == Timestamp::MAX {
            // No policy hint at all: fall back to a fresh clock reading.
            pin_ts = self.clock.timestamp(process);
        }
        state.gc_pin = Some(self.active.register(pin_ts));
        MvtlTransaction::new(state)
    }

    /// Begins a critical (high-priority) transaction; only meaningful with
    /// [`crate::policy::PrioPolicy`].
    #[must_use]
    pub fn begin_critical(&self, process: ProcessId) -> MvtlTransaction<V> {
        self.begin_with(process, None, true)
    }

    /// Reads `key` within the transaction (Algorithm 1, `read`).
    ///
    /// Returns the transaction's own buffered write if it previously wrote the
    /// key, otherwise the committed version selected by the policy, or `None`
    /// for the initial `⊥` version.
    ///
    /// # Errors
    ///
    /// Returns an abort error if the policy could not acquire the read locks it
    /// needs; the transaction is aborted in that case.
    pub fn read(&self, txn: &mut MvtlTransaction<V>, key: Key) -> Result<Option<V>, TxError> {
        if !txn.state.is_active() {
            return Err(TxError::TransactionFinished);
        }
        if let Some(v) = txn.pending_write(key) {
            return Ok(Some(v.clone()));
        }
        self.read_committed(txn, key)
    }

    /// The committed-read tail shared by [`MvtlStore::read`] and
    /// [`MvtlStore::read_many`]: policy lock negotiation, read-set recording
    /// and the purge-safe version fetch, for a key the transaction has *not*
    /// buffered a write for.
    fn read_committed(&self, txn: &mut MvtlTransaction<V>, key: Key) -> Result<Option<V>, TxError> {
        match self.policy.read_locks(self, &mut txn.state, key) {
            Ok(version) => {
                txn.state.record_read(key, version);
                if version.is_zero() {
                    return Ok(None);
                }
                // The policy anchored on `version` under the stripe latch, but
                // the latch was released before we get here, so a concurrent
                // `purge_below` may have removed the selected version in the
                // window. A missing version for a non-zero anchor therefore
                // means "purged", never "⊥": returning a silent `None` here
                // would fabricate an empty read of a key that has a committed
                // value. Abort with `VersionPurged` instead (§6: transactions
                // that need purged state must abort).
                let fetched = {
                    let stripe = self.cells.stripe_for(key);
                    let guard = stripe.data.lock();
                    match guard.map.get(key) {
                        Some(data) => match data.versions.at(version) {
                            Some(value) => Ok(value.clone()),
                            None => Err(data.versions.purged_below()),
                        },
                        // The cell itself was reclaimed: every version is gone.
                        None => Err(Timestamp::ZERO),
                    }
                };
                match fetched {
                    Ok(value) => Ok(Some(value)),
                    Err(purged_below) => {
                        self.abort_internal(&mut txn.state);
                        Err(TxError::aborted(AbortReason::VersionPurged {
                            key,
                            below: purged_below.max(version.succ()),
                        }))
                    }
                }
            }
            Err(err) => {
                self.abort_internal(&mut txn.state);
                Err(err)
            }
        }
    }

    /// Writes `value` to `key` within the transaction (Algorithm 1, `write`).
    /// The value stays buffered in the transaction until commit.
    ///
    /// # Errors
    ///
    /// Returns an abort error if the policy acquires write locks eagerly and
    /// fails; the transaction is aborted in that case.
    pub fn write(&self, txn: &mut MvtlTransaction<V>, key: Key, value: V) -> Result<(), TxError> {
        if !txn.state.is_active() {
            return Err(TxError::TransactionFinished);
        }
        match self.policy.write_locks(self, &mut txn.state, key) {
            Ok(()) => {
                txn.buffer_write(key, value);
                Ok(())
            }
            Err(err) => {
                self.abort_internal(&mut txn.state);
                Err(err)
            }
        }
    }

    /// Reads every key of `keys` within the transaction, returning values in
    /// input order — the batch-native path of the engine.
    ///
    /// Instead of negotiating an interval lock per *operation*, the batch is
    /// reduced to its distinct keys (keys the transaction has already
    /// buffered a write for are served from the write buffer) and the policy
    /// negotiation runs once per distinct key, in ascending key order. The
    /// canonical order makes concurrent batches acquire their waiting-mode
    /// locks in the same sequence, so two batches can never deadlock on each
    /// other's keys, and the deduplication both halves the latch traffic of
    /// skewed batches and keeps the read set (which commit intersects over)
    /// one entry per key.
    ///
    /// # Errors
    ///
    /// Returns an abort error if the policy could not acquire the read locks
    /// for some key; the transaction is aborted in that case.
    pub fn read_many(
        &self,
        txn: &mut MvtlTransaction<V>,
        keys: &[Key],
    ) -> Result<Vec<Option<V>>, TxError> {
        if !txn.state.is_active() {
            return Err(TxError::TransactionFinished);
        }
        let mut need: Vec<Key> = keys
            .iter()
            .copied()
            .filter(|key| txn.pending_write(*key).is_none())
            .collect();
        need.sort_unstable();
        need.dedup();
        // `need` is sorted, so the fetched pairs are sorted by key and the
        // answer-assembly lookup below can binary search instead of hashing.
        let mut fetched: Vec<(Key, Option<V>)> = Vec::with_capacity(need.len());
        for key in need {
            let value = self.read_committed(txn, key)?;
            fetched.push((key, value));
        }
        Ok(keys
            .iter()
            .map(|key| {
                txn.pending_write(*key).cloned().or_else(|| {
                    fetched
                        .binary_search_by_key(key, |(k, _)| *k)
                        .ok()
                        .and_then(|i| fetched[i].1.clone())
                })
            })
            .collect())
    }

    /// Writes every `(key, value)` pair of `entries` within the transaction
    /// (last value per key wins, as with sequential writes) — the batch-native
    /// path of the engine.
    ///
    /// The policy's write-lock acquisition runs once per distinct key, in
    /// ascending key order (same deadlock-freedom and deduplication argument
    /// as [`MvtlStore::read_many`]); only then are the values buffered.
    ///
    /// # Errors
    ///
    /// Returns an abort error if the policy acquires write locks eagerly and
    /// fails for some key; the transaction is aborted in that case.
    pub fn write_many(
        &self,
        txn: &mut MvtlTransaction<V>,
        entries: Vec<(Key, V)>,
    ) -> Result<(), TxError> {
        if !txn.state.is_active() {
            return Err(TxError::TransactionFinished);
        }
        let mut keys: Vec<Key> = entries.iter().map(|(key, _)| *key).collect();
        keys.sort_unstable();
        keys.dedup();
        for key in keys {
            if let Err(err) = self.policy.write_locks(self, &mut txn.state, key) {
                self.abort_internal(&mut txn.state);
                return Err(err);
            }
        }
        for (key, value) in entries {
            txn.buffer_write(key, value);
        }
        Ok(())
    }

    /// Attempts to commit the transaction (Algorithm 1, `commit`).
    ///
    /// # Errors
    ///
    /// Returns an abort error when no single timestamp is locked across all
    /// accessed keys (line 14), or when the policy's commit-time locking fails.
    pub fn commit(&self, mut txn: MvtlTransaction<V>) -> Result<CommitInfo, TxError> {
        if !txn.state.is_active() {
            return Err(TxError::TransactionFinished);
        }
        if let Err(err) = self.policy.commit_locks(self, &mut txn.state) {
            self.abort_internal(&mut txn.state);
            return Err(err);
        }
        // Line 13: find the timestamps locked across every accessed key.
        let candidates = self.commit_candidates(&txn.state);
        let chosen = if candidates.is_empty() {
            None
        } else {
            self.policy.commit_ts(&txn.state, &candidates)
        };
        let commit_ts = match chosen {
            Some(t) if candidates.contains(t) => t,
            _ => {
                self.abort_internal(&mut txn.state);
                return Err(TxError::aborted(AbortReason::NoCommonTimestamp));
            }
        };
        Ok(self.finish_commit(txn, commit_ts))
    }

    /// Runs the participant side of the §7 distributed commit: performs the
    /// policy's commit-time locking, computes the candidate timestamps of
    /// Algorithm 1 line 13, and *freezes* the interval the policy is willing
    /// to commit at ([`LockingPolicy::prepared_interval`]). The transaction
    /// keeps all its locks, so the frozen interval cannot be invalidated until
    /// the coordinator calls [`MvtlStore::commit_prepared`] or
    /// [`MvtlStore::abort_prepared`].
    ///
    /// # Errors
    ///
    /// Returns an abort error when the policy's commit-time locking fails or
    /// the frozen interval is empty; the transaction is fully aborted (locks
    /// released) in that case.
    pub fn prepare_commit(
        &self,
        mut txn: MvtlTransaction<V>,
    ) -> Result<PreparedCommit<V>, TxError> {
        if !txn.state.is_active() {
            return Err(TxError::TransactionFinished);
        }
        if let Err(err) = self.policy.commit_locks(self, &mut txn.state) {
            self.abort_internal(&mut txn.state);
            return Err(err);
        }
        let candidates = self.commit_candidates(&txn.state);
        let interval = self.policy.prepared_interval(&txn.state, &candidates);
        if interval.is_empty() {
            self.abort_internal(&mut txn.state);
            return Err(TxError::aborted(AbortReason::NoCommonTimestamp));
        }
        Ok(PreparedCommit { txn, interval })
    }

    /// Commits a prepared transaction at `commit_ts`, which the coordinator
    /// picked from the intersection of every participant's frozen interval.
    ///
    /// # Errors
    ///
    /// Returns an abort error when `commit_ts` lies outside the frozen
    /// interval reported by [`MvtlStore::prepare_commit`]; the transaction is
    /// fully aborted in that case. A timestamp inside the interval always
    /// succeeds, because the transaction still holds all the locks backing it.
    pub fn commit_prepared(
        &self,
        prepared: PreparedCommit<V>,
        commit_ts: Timestamp,
    ) -> Result<CommitInfo, TxError> {
        let PreparedCommit { mut txn, interval } = prepared;
        if !interval.contains(commit_ts) {
            self.abort_internal(&mut txn.state);
            return Err(TxError::aborted(AbortReason::NoCommonTimestamp));
        }
        Ok(self.finish_commit(txn, commit_ts))
    }

    /// Aborts a prepared transaction, releasing its locks on this store (the
    /// coordinator's empty-intersection path).
    pub fn abort_prepared(&self, prepared: PreparedCommit<V>) {
        let mut txn = prepared.txn;
        self.abort_internal(&mut txn.state);
    }

    /// Rebuilds the prepared state of a sub-transaction from its logged write
    /// set and frozen interval (`mvtl-wal` crash recovery).
    ///
    /// A participant that logged a prepare record and then crashed promised
    /// the coordinator it could commit anywhere in `interval`. Recovery
    /// re-creates that promise: it write-locks every logged key over the
    /// interval (without waiting — the store has just been rebuilt, so the
    /// only contention is between recovered transactions themselves) and
    /// returns a [`PreparedCommit`] whose interval is the part of `interval`
    /// that could be re-frozen. The caller then resolves it exactly like a
    /// live prepared transaction: [`MvtlStore::commit_prepared`] when the
    /// coordinator's decision was logged, [`MvtlStore::abort_prepared`] under
    /// presumed abort when it was not.
    ///
    /// No locking policy runs here: the policy already made its decision
    /// before the crash, and the log is its record.
    ///
    /// # Errors
    ///
    /// Returns an abort error when none of `interval` can be re-frozen (for
    /// example because a recovered committed transaction already installed a
    /// version there); the partial lock state is fully released.
    pub fn recover_prepared(
        &self,
        writes: Vec<(Key, V)>,
        interval: &TsSet,
    ) -> Result<PreparedCommit<V>, TxError> {
        let Some(pin_ts) = interval.min() else {
            return Err(TxError::aborted(AbortReason::NoCommonTimestamp));
        };
        let mut state = TxState::new(RECOVERY_PROCESS, None);
        state.gc_pin = Some(self.active.register(pin_ts));
        let mut txn = MvtlTransaction::new(state);
        let mut keys: Vec<Key> = writes.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        keys.dedup();
        let mut frozen = interval.clone();
        for key in keys {
            let mut granted = TsSet::new();
            for range in interval.ranges() {
                match self.acquire_write_range(&mut txn.state, key, *range, false) {
                    Ok(got) => granted = granted.union(&got),
                    Err(err) => {
                        self.abort_internal(&mut txn.state);
                        return Err(err);
                    }
                }
            }
            frozen = frozen.intersection(&granted);
            if frozen.is_empty() {
                self.abort_internal(&mut txn.state);
                return Err(TxError::aborted(AbortReason::NoCommonTimestamp));
            }
        }
        for (key, value) in writes {
            txn.buffer_write(key, value);
        }
        Ok(PreparedCommit {
            txn,
            interval: frozen,
        })
    }

    /// The commit tail shared by [`MvtlStore::commit`] and
    /// [`MvtlStore::commit_prepared`]: installs versions, freezes write locks
    /// at `commit_ts` and garbage collects per policy. `commit_ts` must be a
    /// member of the transaction's commit candidates.
    fn finish_commit(&self, mut txn: MvtlTransaction<V>, commit_ts: Timestamp) -> CommitInfo {
        // Lines 17-19: freeze the write locks at the commit timestamp and
        // expose the committed values. Both happen under the stripe's latch so
        // that observers never see a frozen write lock without its version.
        for (key, value) in std::mem::take(&mut txn.write_values) {
            self.with_cell_notify(key, |data, arena| {
                data.locks
                    .freeze(txn.state.id, LockMode::Write, TsRange::point(commit_ts));
                data.versions.install(commit_ts, value, arena);
            });
        }
        txn.state.status = TxStatus::Committed;
        txn.state.commit_ts = Some(commit_ts);
        if let Some(pin) = txn.state.gc_pin.take() {
            self.active.deregister(pin);
        }
        // Line 21: optional garbage collection.
        if self.policy.commit_gc(&txn.state) {
            self.gc_transaction(&txn.state, commit_ts);
        }
        // The transaction is consumed: move the read/write sets out instead
        // of cloning them.
        CommitInfo {
            tx: txn.state.id,
            commit_ts: Some(commit_ts),
            reads: std::mem::take(&mut txn.state.read_set),
            writes: std::mem::take(&mut txn.state.write_keys),
        }
    }

    /// Aborts the transaction, releasing its locks according to the policy.
    pub fn abort(&self, mut txn: MvtlTransaction<V>) {
        if txn.state.is_active() {
            self.abort_internal(&mut txn.state);
        }
    }

    /// Garbage collection for an ended transaction (Algorithm 1, `gc`): freeze
    /// the read locks between each version read and the commit timestamp, then
    /// release every remaining unfrozen lock.
    fn gc_transaction(&self, tx: &TxState, commit_ts: Timestamp) {
        for (key, version) in &tx.read_set {
            let start = version.succ();
            if start > commit_ts {
                continue;
            }
            self.with_cell_notify(*key, |data, _| {
                data.locks
                    .freeze(tx.id, LockMode::Read, TsRange::new(start, commit_ts));
            });
        }
        for (key, _) in tx.held.iter() {
            self.with_cell_notify(key, |data, _| {
                data.locks.release_unfrozen(tx.id);
            });
        }
    }

    fn abort_internal(&self, tx: &mut TxState) {
        let release_reads = self.policy.release_read_locks_on_abort();
        for (key, _) in tx.held.iter() {
            self.with_cell_notify(key, |data, _| {
                if release_reads {
                    data.locks.release_unfrozen(tx.id);
                } else {
                    // Emulating MVTO+: pending writes disappear but the
                    // read-timestamp footprint (read locks) stays behind.
                    data.locks
                        .release_unfrozen_range(tx.id, LockMode::Write, TsRange::all());
                }
            });
        }
        tx.status = TxStatus::Aborted;
        if let Some(pin) = tx.gc_pin.take() {
            self.active.deregister(pin);
        }
    }

    /// The candidate commit timestamps of Algorithm 1 line 13: timestamps `t`
    /// such that every read key is covered contiguously from the version read
    /// up to `t` by locks the transaction holds, and every written key is
    /// write-locked at `t`.
    fn commit_candidates(&self, tx: &TxState) -> TsSet {
        // Timestamp::ZERO is reserved for the initial ⊥ version, so no
        // transaction may serialize there.
        let mut candidates =
            TsSet::from_range(TsRange::new(Timestamp::ZERO.succ(), Timestamp::MAX));
        for (key, version) in &tx.read_set {
            let held = tx.locks_on(*key).map(HeldLocks::any).unwrap_or_default();
            let start = version.succ();
            let mut allowed = TsSet::new();
            for range in held.ranges() {
                if range.contains(start) {
                    allowed = TsSet::from_range(TsRange::new(start, range.end));
                    break;
                }
            }
            candidates = candidates.intersection(&allowed);
            if candidates.is_empty() {
                return candidates;
            }
        }
        for key in &tx.write_keys {
            let write_held = tx
                .locks_on(*key)
                .map(|h| h.write.clone())
                .unwrap_or_default();
            candidates = candidates.intersection(&write_held);
            if candidates.is_empty() {
                return candidates;
            }
        }
        candidates
    }

    /// Purges versions (and the associated lock state) older than `bound`,
    /// keeping the most recent version of each key (§6, §8.1). Returns the
    /// number of versions and lock entries removed.
    ///
    /// Purging is only *safe* (no `VersionPurged` aborts of live
    /// transactions) when `bound` does not exceed
    /// [`MvtlStore::low_watermark`]; the `mvtl-gc` service maintains that
    /// invariant automatically. Cells whose version chain is empty (only the
    /// implicit `⊥`) and whose lock table is empty after the purge are
    /// removed from the key map entirely, so keys that were only ever read —
    /// or whose writers all aborted — stop occupying memory. Reclamation is
    /// safe under the stripe latch alone: nothing holds a reference to a cell
    /// across a latch release, and waiters re-probe their key after waking.
    pub fn purge_below(&self, bound: Timestamp) -> (usize, usize) {
        let mut versions_removed = 0;
        let mut locks_removed = 0;
        for stripe in self.cells.stripes() {
            {
                let mut guard = stripe.data.lock();
                let CoreStripe { map, arena } = &mut *guard;
                map.retain(|_, data| {
                    versions_removed += data.versions.purge_below(bound, arena);
                    locks_removed += data.locks.purge_below(bound);
                    if data.is_idle() {
                        data.versions.release(arena);
                        false
                    } else {
                        true
                    }
                });
            }
            stripe.notify();
        }
        (versions_removed, locks_removed)
    }

    /// The smallest timestamp any in-flight transaction may still anchor a
    /// read on, or `None` when no transaction is active. Purging strictly
    /// below this bound can never abort a live transaction of a policy whose
    /// reads anchor at or above its begin-time state (every policy shipped
    /// here; the registered pin already accounts for ε-clock and
    /// negative-offset Pref windows).
    #[must_use]
    pub fn low_watermark(&self) -> Option<Timestamp> {
        self.active.low_watermark()
    }

    /// Number of transactions currently registered as in flight.
    #[must_use]
    pub fn active_transactions(&self) -> usize {
        self.active.active_count()
    }

    /// Aggregate state-size statistics across all keys.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        let mut stats = StoreStats::default();
        for stripe in self.cells.stripes() {
            let guard = stripe.data.lock();
            for (_, data) in guard.map.iter() {
                stats.keys += 1;
                let vs = data.versions.stats();
                stats.versions += vs.versions;
                stats.purged_versions += vs.purged;
                let ls = data.locks.stats();
                stats.lock_entries += ls.entries;
                stats.frozen_lock_entries += ls.frozen_entries;
            }
        }
        stats
    }

    /// The committed value of `key` at the latest version strictly before
    /// `before`, outside of any transaction. Intended for examples, tests and
    /// debugging; regular access goes through transactions.
    #[must_use]
    pub fn snapshot_read(&self, key: Key, before: Timestamp) -> Option<V> {
        let stripe = self.cells.stripe_for(key);
        let guard = stripe.data.lock();
        match guard.map.get(key) {
            Some(data) => match data.versions.latest_before(before) {
                Ok((_, v)) => v,
                Err(_) => None,
            },
            None => None,
        }
    }
}

impl<V, P> PolicyCtx for MvtlStore<V, P>
where
    V: Clone + Send + Sync + 'static,
    P: LockingPolicy,
{
    fn clock_value(&self, tx: &TxState, process: ProcessId) -> u64 {
        match tx.pinned {
            Some(ts) => ts.value,
            None => self.clock.now(process),
        }
    }

    fn acquire_read_interval(
        &self,
        tx: &mut TxState,
        key: Key,
        anchor_below: Timestamp,
        mut upper: Timestamp,
        wait: bool,
    ) -> Result<ReadGrant, TxError> {
        let stripe = self.cells.stripe_for(key);
        let deadline = Instant::now() + self.config.lock_wait_timeout;
        let mut guard = stripe.data.lock();
        loop {
            // Re-probe the cell each iteration: waiting releases the latch,
            // and the stripe map may rehash or reclaim entries while we sleep.
            let CoreStripe { map, .. } = &mut *guard;
            let data = map.get_or_insert_with(key, KeyData::default);
            let anchor = match data.versions.latest_before(anchor_below) {
                Ok((t, _)) => t,
                Err(bound) => {
                    return Err(TxError::aborted(AbortReason::VersionPurged {
                        key,
                        below: bound,
                    }))
                }
            };
            if upper < anchor.succ() {
                return Ok(ReadGrant {
                    version: anchor,
                    granted: TsSet::new(),
                });
            }
            let desired = TsRange::new(anchor.succ(), upper);
            let analysis = data.locks.analyze(tx.id, LockMode::Read, desired);
            if analysis.hit_frozen() {
                // A frozen write lock inside the window means a newer version
                // exists (or is sealed) there; shrink the window to end just
                // below it and retry, re-anchoring on the newer version when
                // it is visible.
                let frozen_at = analysis
                    .first_frozen()
                    .expect("hit_frozen implies a frozen point");
                if frozen_at <= anchor.succ() {
                    return Ok(ReadGrant {
                        version: anchor,
                        granted: TsSet::new(),
                    });
                }
                upper = frozen_at.pred();
                continue;
            }
            if !analysis.blocked_unfrozen.is_empty() {
                if wait {
                    if stripe.changed.wait_until(&mut guard, deadline).timed_out() {
                        return Err(TxError::aborted(AbortReason::LockTimeout { key }));
                    }
                    continue;
                }
                // No waiting: lock only the contiguous prefix that is free.
                let granted = match analysis.contiguous_grantable_end(anchor.succ()) {
                    None => TsSet::new(),
                    Some(end) => TsSet::from_range(TsRange::new(anchor.succ(), end)),
                };
                data.locks.acquire(tx.id, LockMode::Read, &granted);
                tx.record_read_locks(key, &granted);
                return Ok(ReadGrant {
                    version: anchor,
                    granted,
                });
            }
            let granted = analysis.grantable;
            data.locks.acquire(tx.id, LockMode::Read, &granted);
            tx.record_read_locks(key, &granted);
            return Ok(ReadGrant {
                version: anchor,
                granted,
            });
        }
    }

    fn acquire_write_range(
        &self,
        tx: &mut TxState,
        key: Key,
        desired: TsRange,
        wait: bool,
    ) -> Result<TsSet, TxError> {
        let stripe = self.cells.stripe_for(key);
        let deadline = Instant::now() + self.config.lock_wait_timeout;
        let mut guard = stripe.data.lock();
        loop {
            let CoreStripe { map, .. } = &mut *guard;
            let data = map.get_or_insert_with(key, KeyData::default);
            let analysis = data.locks.analyze(tx.id, LockMode::Write, desired);
            if wait && !analysis.blocked_unfrozen.is_empty() {
                if stripe.changed.wait_until(&mut guard, deadline).timed_out() {
                    return Err(TxError::aborted(AbortReason::LockTimeout { key }));
                }
                continue;
            }
            let granted = analysis.grantable;
            data.locks.acquire(tx.id, LockMode::Write, &granted);
            tx.record_write_locks(key, &granted);
            return Ok(granted);
        }
    }

    fn release_unfrozen_write_locks(&self, tx: &mut TxState) {
        for (key, held) in tx.held.iter() {
            if held.write.is_empty() {
                continue;
            }
            self.with_cell_notify(key, |data, _| {
                data.locks
                    .release_unfrozen_range(tx.id, LockMode::Write, TsRange::all());
            });
        }
        tx.clear_write_locks();
    }

    fn latest_version_before(&self, key: Key, below: Timestamp) -> Result<Timestamp, TxError> {
        let stripe = self.cells.stripe_for(key);
        let guard = stripe.data.lock();
        let result = match guard.map.get(key) {
            Some(data) => data.versions.latest_before(below).map(|(t, _)| t),
            None => Ok(Timestamp::ZERO),
        };
        result.map_err(|bound| TxError::aborted(AbortReason::VersionPurged { key, below: bound }))
    }
}

impl<V, P> TransactionalKV<V> for MvtlStore<V, P>
where
    V: Clone + Send + Sync + 'static,
    P: LockingPolicy,
{
    type Txn = MvtlTransaction<V>;

    fn begin_at(&self, process: ProcessId, pinned: Option<Timestamp>) -> Self::Txn {
        self.begin_with(process, pinned, false)
    }

    fn read(&self, txn: &mut Self::Txn, key: Key) -> Result<Option<V>, TxError> {
        MvtlStore::read(self, txn, key)
    }

    fn write(&self, txn: &mut Self::Txn, key: Key, value: V) -> Result<(), TxError> {
        MvtlStore::write(self, txn, key, value)
    }

    fn read_many(&self, txn: &mut Self::Txn, keys: &[Key]) -> Result<Vec<Option<V>>, TxError> {
        MvtlStore::read_many(self, txn, keys)
    }

    fn write_many(&self, txn: &mut Self::Txn, entries: Vec<(Key, V)>) -> Result<(), TxError> {
        MvtlStore::write_many(self, txn, entries)
    }

    fn commit(&self, txn: Self::Txn) -> Result<CommitInfo, TxError> {
        MvtlStore::commit(self, txn)
    }

    fn abort(&self, txn: Self::Txn) {
        MvtlStore::abort(self, txn);
    }

    fn name(&self) -> &'static str {
        self.policy.name()
    }

    fn stats(&self) -> StoreStats {
        MvtlStore::stats(self)
    }

    fn purge_below(&self, bound: Timestamp) -> (usize, usize) {
        MvtlStore::purge_below(self, bound)
    }

    fn low_watermark(&self) -> Option<Timestamp> {
        MvtlStore::low_watermark(self)
    }

    fn recover_install(
        &self,
        writes: Vec<(Key, V)>,
        commit_ts: Option<Timestamp>,
    ) -> Result<(), TxError> {
        let ts = commit_ts.ok_or_else(|| {
            TxError::Internal("mvtl recovery requires the original commit timestamp".into())
        })?;
        let prepared = self.recover_prepared(writes, &TsSet::from_point(ts))?;
        self.commit_prepared(prepared, ts).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ToPolicy;
    use mvtl_clock::GlobalClock;

    fn store() -> MvtlStore<u64, ToPolicy> {
        MvtlStore::new(
            ToPolicy::new(),
            Arc::new(GlobalClock::new()),
            MvtlConfig::default(),
        )
    }

    #[test]
    fn read_your_own_writes() {
        let s = store();
        let mut tx = s.begin(ProcessId(0));
        s.write(&mut tx, Key(1), 7).unwrap();
        assert_eq!(s.read(&mut tx, Key(1)).unwrap(), Some(7));
        s.commit(tx).unwrap();
    }

    #[test]
    fn batched_reads_dedup_and_serve_pending_writes() {
        let s = store();
        let mut setup = s.begin(ProcessId(0));
        s.write(&mut setup, Key(1), 10).unwrap();
        s.write(&mut setup, Key(2), 20).unwrap();
        s.commit(setup).unwrap();

        let mut tx = s.begin(ProcessId(1));
        s.write(&mut tx, Key(2), 99).unwrap();
        let values = s
            .read_many(&mut tx, &[Key(2), Key(1), Key(3), Key(1)])
            .unwrap();
        assert_eq!(values, vec![Some(99), Some(10), None, Some(10)]);
        // Deduplication: the repeated Key(1) read anchored once, and the
        // buffered Key(2) never reached the policy, so the read set holds
        // exactly one entry per negotiated key.
        let read_keys: Vec<Key> = tx.state().read_set.iter().map(|(k, _)| *k).collect();
        assert_eq!(read_keys, vec![Key(1), Key(3)]);
        s.commit(tx).unwrap();
    }

    #[test]
    fn batched_writes_lock_once_per_key_and_last_value_wins() {
        let s = store();
        let mut tx = s.begin(ProcessId(0));
        s.write_many(&mut tx, vec![(Key(5), 1), (Key(4), 2), (Key(5), 3)])
            .unwrap();
        // The write set preserves first-occurrence order, as sequential
        // writes would.
        assert_eq!(tx.state().write_keys, vec![Key(5), Key(4)]);
        s.commit(tx).unwrap();
        assert_eq!(s.snapshot_read(Key(5), Timestamp::MAX), Some(3));
        assert_eq!(s.snapshot_read(Key(4), Timestamp::MAX), Some(2));
    }

    #[test]
    fn operations_on_finished_transactions_fail() {
        let s = store();
        let mut tx = s.begin(ProcessId(0));
        s.write(&mut tx, Key(1), 7).unwrap();
        let info = s.commit(tx).unwrap();
        assert_eq!(info.writes, vec![Key(1)]);

        let mut tx2 = s.begin(ProcessId(0));
        s.abort(tx2);
        tx2 = s.begin(ProcessId(0));
        let _ = s.read(&mut tx2, Key(1)).unwrap();
        s.commit(tx2).unwrap();
    }

    #[test]
    fn snapshot_read_sees_committed_state() {
        let s = store();
        let mut tx = s.begin(ProcessId(0));
        s.write(&mut tx, Key(5), 99).unwrap();
        s.commit(tx).unwrap();
        assert_eq!(s.snapshot_read(Key(5), Timestamp::MAX), Some(99));
        assert_eq!(s.snapshot_read(Key(6), Timestamp::MAX), None);
    }

    #[test]
    fn stats_count_state() {
        let s = store();
        for i in 0..5u64 {
            let mut tx = s.begin(ProcessId(0));
            s.write(&mut tx, Key(i), i).unwrap();
            s.commit(tx).unwrap();
        }
        let stats = s.stats();
        assert_eq!(stats.keys, 5);
        assert_eq!(stats.versions, 5);
        assert!(stats.lock_entries >= 5);
        assert!(stats.frozen_lock_entries >= 5);
    }

    #[test]
    fn prepare_then_commit_at_coordinator_timestamp() {
        let s = store();
        let mut tx = s.begin(ProcessId(0));
        s.write(&mut tx, Key(1), 7).unwrap();
        let prepared = s.prepare_commit(tx).unwrap();
        let interval = prepared.interval().clone();
        assert!(!interval.is_empty());
        let ts = interval.min().unwrap();
        let info = s.commit_prepared(prepared, ts).unwrap();
        assert_eq!(info.commit_ts, Some(ts));
        assert_eq!(s.snapshot_read(Key(1), Timestamp::MAX), Some(7));
    }

    #[test]
    fn commit_prepared_outside_the_frozen_interval_aborts() {
        let s = store();
        let mut tx = s.begin(ProcessId(0));
        s.write(&mut tx, Key(2), 9).unwrap();
        let prepared = s.prepare_commit(tx).unwrap();
        let outside = prepared.interval().max().unwrap().succ();
        let err = s.commit_prepared(prepared, outside).unwrap_err();
        assert!(err.is_abort());
        // The failed transaction released its locks: a writer succeeds now.
        let mut tx = s.begin(ProcessId(1));
        s.write(&mut tx, Key(2), 10).unwrap();
        s.commit(tx).unwrap();
    }

    #[test]
    fn abort_prepared_releases_locks() {
        let s = store();
        let before = s.stats().lock_entries;
        let mut tx = s.begin(ProcessId(0));
        s.write(&mut tx, Key(3), 1).unwrap();
        let prepared = s.prepare_commit(tx).unwrap();
        assert!(s.stats().lock_entries > before, "prepared txn holds locks");
        s.abort_prepared(prepared);
        assert_eq!(s.stats().lock_entries, before);
        assert_eq!(s.snapshot_read(Key(3), Timestamp::MAX), None);
    }

    #[test]
    fn purge_removes_old_versions() {
        let s = store();
        for round in 0..3u64 {
            let mut tx = s.begin(ProcessId(0));
            s.write(&mut tx, Key(1), round).unwrap();
            s.commit(tx).unwrap();
        }
        assert_eq!(s.stats().versions, 3);
        let (versions_removed, _locks_removed) = s.purge_below(Timestamp::MAX);
        assert_eq!(versions_removed, 2);
        assert_eq!(s.stats().versions, 1);
        // The latest value is still readable.
        let mut tx = s.begin(ProcessId(0));
        assert_eq!(s.read(&mut tx, Key(1)).unwrap(), Some(2));
        s.commit(tx).unwrap();
    }

    #[test]
    fn low_watermark_tracks_active_transactions() {
        let s = store();
        assert_eq!(s.low_watermark(), None);
        let tx1 = s.begin(ProcessId(1));
        let tx2 = s.begin(ProcessId(2));
        let wm = s.low_watermark().expect("two active transactions");
        let pin1 = tx1.state().start_ts.unwrap();
        assert!(wm <= pin1, "watermark at or below the oldest pin");
        assert_eq!(s.active_transactions(), 2);
        s.abort(tx1);
        let wm2 = s.low_watermark().expect("tx2 still active");
        assert!(wm2 >= wm, "watermark advances monotonically here");
        s.commit(tx2).unwrap();
        assert_eq!(s.low_watermark(), None);
        assert_eq!(s.active_transactions(), 0);
    }

    #[test]
    fn failed_commits_release_the_watermark_pin() {
        let s = store();
        let mut tx = s.begin(ProcessId(0));
        s.write(&mut tx, Key(1), 1).unwrap();
        let prepared = s.prepare_commit(tx).unwrap();
        assert_eq!(s.active_transactions(), 1, "prepared txns stay pinned");
        let outside = prepared.interval().max().unwrap().succ();
        assert!(s.commit_prepared(prepared, outside).is_err());
        assert_eq!(s.active_transactions(), 0);
    }

    #[test]
    fn purge_reclaims_read_only_and_aborted_cells() {
        let s = store();
        // A committed write on one key, plus cells created by a pure read and
        // by an aborted writer.
        let mut tx = s.begin(ProcessId(0));
        s.write(&mut tx, Key(1), 7).unwrap();
        s.commit(tx).unwrap();
        let mut tx = s.begin(ProcessId(0));
        assert_eq!(s.read(&mut tx, Key(2)).unwrap(), None);
        s.commit(tx).unwrap();
        // ToPolicy locks writes only at commit, so an aborted writer leaves a
        // cell behind only if it also read the key.
        let mut tx = s.begin(ProcessId(0));
        assert_eq!(s.read(&mut tx, Key(3)).unwrap(), None);
        s.write(&mut tx, Key(3), 9).unwrap();
        s.abort(tx);
        assert_eq!(s.stats().keys, 3);
        let _ = s.purge_below(Timestamp::MAX);
        // Keys 2 and 3 carry no versions and no locks any more: their cells
        // are reclaimed. Key 1 keeps its latest version.
        let stats = s.stats();
        assert_eq!(stats.keys, 1);
        assert_eq!(stats.versions, 1);
        let mut tx = s.begin(ProcessId(0));
        assert_eq!(s.read(&mut tx, Key(1)).unwrap(), Some(7));
        assert_eq!(s.read(&mut tx, Key(2)).unwrap(), None);
        s.commit(tx).unwrap();
    }

    #[test]
    fn purged_anchor_reads_abort_instead_of_returning_silent_none() {
        // Reproduce the purge/read race deterministically: anchor a read on
        // an old version by pinning the reader in the past, purge that
        // version, then fetch. The read must abort with `VersionPurged`, not
        // return `Ok(None)` for a key that has committed values.
        let s = store();
        let mut tx = s.begin(ProcessId(0));
        s.write(&mut tx, Key(1), 1).unwrap();
        let first = s.commit(tx).unwrap().commit_ts.unwrap();
        for round in 2..=3u64 {
            let mut tx = s.begin(ProcessId(0));
            s.write(&mut tx, Key(1), round).unwrap();
            s.commit(tx).unwrap();
        }
        // A reader pinned just above the first commit anchors on that oldest
        // version; purging everything below MAX (manual, watermark-ignoring)
        // removes it. The read must abort, never report `Ok(None)`.
        let mut reader = s.begin_with(ProcessId(1), Some(first.succ()), false);
        let _ = s.purge_below(Timestamp::MAX);
        let err = s.read(&mut reader, Key(1)).unwrap_err();
        assert!(
            matches!(
                err.abort_reason(),
                Some(AbortReason::VersionPurged { key, .. }) if *key == Key(1)
            ),
            "expected VersionPurged, got {err:?}"
        );
    }
}
