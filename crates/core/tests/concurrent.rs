//! Concurrency tests: drive every MVTL policy from many threads and check
//! basic integrity invariants (the full serializability check lives in
//! `mvtl-verify`, which builds the multiversion serialization graph).

use mvtl_clock::GlobalClock;
use mvtl_common::{Key, ProcessId, TransactionalKV, TxError};
use mvtl_core::policy::{
    EpsilonPolicy, GhostbusterPolicy, LockingPolicy, MvtilPolicy, PessimisticPolicy, PrefPolicy,
    PrioPolicy, ToPolicy,
};
use mvtl_core::{MvtlConfig, MvtlStore};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Runs `threads` workers, each transferring between a pair of accounts in a
/// loop; the sum of all account balances is invariant under transfers, so any
/// isolation violation shows up as a broken total.
fn run_bank<P: LockingPolicy + Clone>(policy: P, threads: usize, iters: usize) {
    const ACCOUNTS: u64 = 8;
    const INITIAL: u64 = 1_000;

    let store: Arc<MvtlStore<u64, P>> = Arc::new(MvtlStore::new(
        policy,
        Arc::new(GlobalClock::new()),
        MvtlConfig::default().with_lock_wait_timeout(Duration::from_millis(10)),
    ));

    // Seed the accounts in one transaction.
    {
        let mut tx = store.begin(ProcessId(0));
        for a in 0..ACCOUNTS {
            store.write(&mut tx, Key(a), INITIAL).unwrap();
        }
        store.commit(tx).unwrap();
    }

    let commits = Arc::new(AtomicU64::new(0));
    let aborts = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        for worker in 0..threads {
            let store = Arc::clone(&store);
            let commits = Arc::clone(&commits);
            let aborts = Arc::clone(&aborts);
            scope.spawn(move || {
                let process = ProcessId(worker as u32 + 1);
                for i in 0..iters {
                    let from = Key(((worker + i) as u64) % ACCOUNTS);
                    let to = Key(((worker + i + 1) as u64) % ACCOUNTS);
                    if from == to {
                        continue;
                    }
                    let mut tx = store.begin(process);
                    let result = (|| -> Result<(), TxError> {
                        let a = store.read(&mut tx, from)?.unwrap_or(0);
                        let b = store.read(&mut tx, to)?.unwrap_or(0);
                        if a == 0 {
                            return Ok(());
                        }
                        store.write(&mut tx, from, a - 1)?;
                        store.write(&mut tx, to, b + 1)?;
                        Ok(())
                    })();
                    match result {
                        Ok(()) => match store.commit(tx) {
                            Ok(_) => {
                                commits.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                aborts.fetch_add(1, Ordering::Relaxed);
                            }
                        },
                        Err(_) => {
                            aborts.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    // Snapshot the final committed state and check the invariant.
    let mut tx = store.begin(ProcessId(99));
    let mut total = 0u64;
    for a in 0..ACCOUNTS {
        total += store.read(&mut tx, Key(a)).unwrap().unwrap_or(0);
    }
    // The snapshot transaction itself may abort under contention-free policies
    // only if versions were purged, which we never do here, so commit must work
    // for every policy when run after the workers have finished.
    store.commit(tx).unwrap();

    assert_eq!(
        total,
        ACCOUNTS * INITIAL,
        "balance total must be preserved (commits={}, aborts={})",
        commits.load(Ordering::Relaxed),
        aborts.load(Ordering::Relaxed)
    );
    assert!(
        commits.load(Ordering::Relaxed) > 0,
        "at least some transfers must commit"
    );
}

#[test]
fn mvtil_early_preserves_balance_invariant() {
    run_bank(MvtilPolicy::early(2_000), 4, 200);
}

#[test]
fn mvtil_late_preserves_balance_invariant() {
    run_bank(MvtilPolicy::late(2_000), 4, 200);
}

#[test]
fn to_policy_preserves_balance_invariant() {
    run_bank(ToPolicy::new(), 4, 150);
}

#[test]
fn ghostbuster_preserves_balance_invariant() {
    run_bank(GhostbusterPolicy::new(), 4, 150);
}

#[test]
fn epsilon_clock_preserves_balance_invariant() {
    run_bank(EpsilonPolicy::new(50), 4, 150);
}

#[test]
fn pessimistic_preserves_balance_invariant() {
    run_bank(PessimisticPolicy::new(), 3, 80);
}

#[test]
fn prio_preserves_balance_invariant() {
    run_bank(PrioPolicy::new(), 4, 150);
}

#[test]
fn pref_preserves_balance_invariant() {
    run_bank(PrefPolicy::new(), 4, 150);
}

#[test]
fn concurrent_blind_writers_all_commit_under_mvtil() {
    // Multiversion protocols commit blind writes without conflicts (§8.4.2).
    let store: Arc<MvtlStore<u64, MvtilPolicy>> = Arc::new(MvtlStore::new(
        MvtilPolicy::early(10_000),
        Arc::new(GlobalClock::new()),
        MvtlConfig::default(),
    ));
    let aborted = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for w in 0..8u32 {
            let store = Arc::clone(&store);
            let aborted = Arc::clone(&aborted);
            scope.spawn(move || {
                for i in 0..100u64 {
                    let mut tx = store.begin(ProcessId(w + 1));
                    if store
                        .write(&mut tx, Key(i % 16), u64::from(w) * 1000 + i)
                        .is_err()
                        || store.commit(tx).is_err()
                    {
                        aborted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(
        aborted.load(Ordering::Relaxed),
        0,
        "blind writes must never abort under a multiversion protocol"
    );
}

#[test]
fn store_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MvtlStore<u64, MvtilPolicy>>();
    assert_send_sync::<MvtlStore<String, ToPolicy>>();
    assert_send_sync::<MvtlStore<Vec<u8>, PessimisticPolicy>>();
}
