//! Allocation-count regression tests for the hot path.
//!
//! The overhaul's whole point was to stop paying the allocator per operation:
//! versions live in per-stripe arenas, key state is embedded in the
//! open-addressed stripe map, lock sets are inline up to two ranges, and
//! small values are stored inline in the version slot. These tests pin that
//! property with a counting `#[global_allocator]`: steady-state reads must
//! not allocate at all, and a buffered write must cost at most one
//! allocation (amortized) for an inline `u64` value.
//!
//! Everything runs inside ONE `#[test]` function: the counter is global, so
//! concurrently running sibling tests would pollute the measured windows.
//! The whole file stands down under the `lock-order` feature — the tracked
//! shim records a held→acquiring edge per lock acquisition, which allocates
//! by design.
#![cfg(not(feature = "lock-order"))]

use mvtl_clock::GlobalClock;
use mvtl_common::{Key, ProcessId, TransactionalKV};
use mvtl_core::policy::MvtilPolicy;
use mvtl_core::{MvtlConfig, MvtlStore};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Wraps the system allocator and counts heap requests while armed.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method delegates to `System` with the caller's own layout
// unchanged, so the contract of `GlobalAlloc` is exactly `System`'s.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: forwarded verbatim; the caller upholds `alloc`'s contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: forwarded verbatim; the caller upholds the contract.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: forwarded verbatim; the caller upholds `realloc`'s contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded verbatim; `ptr` came from this allocator, which
        // is layout-compatible with `System`.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `f` with the counter armed and returns how many heap requests
/// (alloc / alloc_zeroed / realloc) it made.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let out = f();
    ARMED.store(false, Ordering::SeqCst);
    (ALLOCS.load(Ordering::SeqCst), out)
}

const KEYS: u64 = 64;

fn seeded_store() -> MvtlStore<u64, MvtilPolicy> {
    let store = MvtlStore::new(
        MvtilPolicy::early(10_000),
        Arc::new(GlobalClock::new()),
        MvtlConfig::default(),
    );
    let mut tx = store.begin(ProcessId(0));
    for k in 0..KEYS {
        store.write(&mut tx, Key(k), k).expect("seed write");
    }
    store.commit(tx).expect("seed commit");
    store
}

#[test]
fn hot_path_allocation_budgets_hold() {
    let store = seeded_store();

    // --- Steady-state reads allocate nothing. -----------------------------
    //
    // One transaction first touches every key (the touches create its
    // read-set entries, held-lock entries and the Vec capacity they live in),
    // then re-reads the whole key set many times over. The measured window
    // covers only the re-reads: every structure is sized by then, lock-set
    // unions of an already-held range are inline no-ops, and a version lookup
    // walks arena slots — so the heap must not be involved at all.
    let mut tx = store.begin(ProcessId(1));
    let mut warm = 0u64;
    for k in 0..KEYS {
        warm += store.read(&mut tx, Key(k)).expect("warm read").unwrap_or(0);
    }
    // Push the read-set past its next capacity doubling so the measured
    // re-reads cannot land on a growth boundary.
    for _ in 0..2 {
        for k in 0..KEYS {
            warm += store.read(&mut tx, Key(k)).expect("warm read").unwrap_or(0);
        }
    }
    const RE_READS: u64 = 64;
    let (read_allocs, sum) = count_allocs(|| {
        let mut sum = 0u64;
        for _ in 0..RE_READS / KEYS {
            for k in 0..KEYS {
                sum += store.read(&mut tx, Key(k)).expect("read").unwrap_or(0);
            }
        }
        sum
    });
    drop(tx);
    assert!(warm > 0 && sum > 0, "reads returned the seeded values");
    assert_eq!(
        read_allocs, 0,
        "steady-state reads hit the allocator ({read_allocs} allocations for {RE_READS} reads)"
    );

    // --- A buffered write of an inline value costs at most one allocation. -
    //
    // A fresh transaction writes every key once and commits. The per-write
    // cost is the write-buffer push plus the lock grant; values are `u64`, so
    // the version slot stores them inline and commit's arena install must not
    // allocate per version. The budget is one allocation per write amortized,
    // plus a fixed setup allowance for the transaction's own buffers and the
    // commit bookkeeping.
    const WRITES: u64 = KEYS;
    const SETUP_SLACK: u64 = 16;
    let (write_allocs, ()) = count_allocs(|| {
        let mut tx = store.begin(ProcessId(2));
        for k in 0..WRITES {
            store.write(&mut tx, Key(k), k + 1).expect("write");
        }
        store.commit(tx).expect("commit");
    });
    assert!(
        write_allocs <= WRITES + SETUP_SLACK,
        "buffered writes exceed the allocation budget: {write_allocs} allocations for \
         {WRITES} writes (budget {WRITES} + {SETUP_SLACK} setup)"
    );
}
