//! The discrete-event simulation driver.

use crate::config::{Protocol, SimConfig};
use crate::event::{EventKind, EventQueue, OpResult};
use crate::metrics::{SeriesPoint, SimMetrics};
use crate::server::{Server, Waiter};
use mvtl_common::{Key, Timestamp, TsRange, TsSet, TxId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// One planned operation of a transaction.
#[derive(Debug, Clone, Copy)]
struct PlannedOp {
    key: Key,
    write: bool,
}

/// What a client is currently doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Issuing the operations of the current transaction one by one.
    Executing,
    /// Waiting for the commit round to the write-set servers to finish.
    Committing,
    /// Waiting for a 2PL lock at a server.
    WaitingForLock,
    /// The coordinator crashed mid-commit; the commitment object will abort
    /// the transaction when the servers' pending-write-lock timeout fires.
    CrashedDuringCommit,
}

#[derive(Debug)]
struct Client {
    attempt: u64,
    tx_id: TxId,
    skew: i64,
    ops: Vec<PlannedOp>,
    next_op: usize,
    phase: Phase,
    /// Candidate timestamps still viable (MVTIL's interval `I`).
    interval: TsSet,
    /// Serialization timestamp (MVTO+) / base of the interval (MVTIL).
    ts: Timestamp,
    /// `(key, version read)` pairs, used for the distributed GC.
    reads: Vec<(Key, Timestamp)>,
    /// Buffered writes.
    writes: Vec<(Key, u64)>,
    /// Keys where the transaction holds server-side lock state.
    locked_keys: Vec<Key>,
    /// Outstanding responses in the commit round.
    commit_pending: usize,
    /// Whether the commit round has seen a failed validation (MVTO+).
    commit_failed: bool,
    /// Deadline for the operation currently being (re-)issued; once it passes,
    /// a blocked operation aborts the transaction instead of retrying (this is
    /// the waiting-with-timeout of §4.3 seen from the client side).
    op_deadline: u64,
}

impl Client {
    fn new() -> Self {
        Client {
            attempt: 0,
            tx_id: TxId(0),
            skew: 0,
            ops: Vec::new(),
            next_op: 0,
            phase: Phase::Executing,
            interval: TsSet::new(),
            ts: Timestamp::ZERO,
            reads: Vec::new(),
            writes: Vec::new(),
            locked_keys: Vec::new(),
            commit_pending: 0,
            commit_failed: false,
            op_deadline: 0,
        }
    }

    fn note_locked(&mut self, key: Key) {
        if !self.locked_keys.contains(&key) {
            self.locked_keys.push(key);
        }
    }
}

/// The discrete-event simulation of the distributed system (§7/§8).
pub struct Simulation {
    config: SimConfig,
    rng: StdRng,
    queue: EventQueue,
    servers: Vec<Server>,
    clients: Vec<Client>,
    now: u64,
    committed: u64,
    aborted: u64,
    commitment_aborts: u64,
    messages: u64,
    bucket_committed: u64,
    bucket_attempts: u64,
    series: Vec<SeriesPoint>,
    finished: bool,
}

impl Simulation {
    /// Builds a simulation from a configuration.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        let servers = (0..config.servers)
            .map(|_| Server::new(config.network.server_cores))
            .collect();
        let clients = (0..config.clients).map(|_| Client::new()).collect();
        Simulation {
            rng,
            queue: EventQueue::new(),
            servers,
            clients,
            now: 0,
            committed: 0,
            aborted: 0,
            commitment_aborts: 0,
            messages: 0,
            bucket_committed: 0,
            bucket_attempts: 0,
            series: Vec::new(),
            finished: false,
            config,
        }
    }

    /// Runs the simulation for the configured duration and returns the
    /// collected metrics.
    #[must_use]
    pub fn run(mut self) -> SimMetrics {
        // Stagger client start times a little, like real clients ramping up.
        for client in 0..self.config.clients {
            let skew = self.config.network.sample_skew(&mut self.rng);
            self.clients[client].skew = skew;
            let start = self.rng.gen_range(0..1_000);
            self.queue.push(
                start,
                EventKind::OpResponse {
                    client,
                    attempt: 0,
                    outcome: OpResult::Ok,
                },
            );
        }
        if let Some(interval) = self.config.gc_interval_us {
            self.queue.push(interval, EventKind::GcBroadcast);
        }
        self.queue
            .push(self.config.sample_interval_us, EventKind::Sample);
        self.queue.push(self.config.duration_us, EventKind::End);

        while let Some(event) = self.queue.pop() {
            self.now = event.time;
            match event.kind {
                EventKind::End => {
                    self.finished = true;
                    break;
                }
                EventKind::Sample => self.on_sample(),
                EventKind::GcBroadcast => self.on_gc(),
                EventKind::LockTimeout { client, attempt } => self.on_timeout(client, attempt),
                EventKind::OpResponse {
                    client,
                    attempt,
                    outcome,
                } => self.on_response(client, attempt, outcome),
            }
        }

        let duration_secs = self.config.duration_us as f64 / 1e6;
        SimMetrics {
            protocol: self.config.protocol.name(),
            committed: self.committed,
            aborted: self.aborted,
            duration_secs,
            series: self.series,
            final_locks: self.servers.iter().map(Server::lock_count).sum(),
            final_versions: self.servers.iter().map(Server::version_count).sum(),
            messages: self.messages,
            commitment_aborts: self.commitment_aborts,
        }
    }

    // ------------------------------------------------------------ events ----

    fn on_sample(&mut self) {
        let interval_secs = self.config.sample_interval_us as f64 / 1e6;
        let attempts = self.bucket_attempts.max(1);
        self.series.push(SeriesPoint {
            time_secs: self.now as f64 / 1e6,
            throughput_tps: self.bucket_committed as f64 / interval_secs,
            commit_rate: self.bucket_committed as f64 / attempts as f64,
            locks: self.servers.iter().map(Server::lock_count).sum(),
            versions: self.servers.iter().map(Server::version_count).sum(),
        });
        self.bucket_committed = 0;
        self.bucket_attempts = 0;
        if self.now < self.config.duration_us {
            self.queue
                .push(self.now + self.config.sample_interval_us, EventKind::Sample);
        }
    }

    fn on_gc(&mut self) {
        let bound = Timestamp::new(self.now.saturating_sub(self.config.gc_lag_us).max(1), 0);
        for server in &mut self.servers {
            server.purge_below(bound);
        }
        if let Some(interval) = self.config.gc_interval_us {
            if self.now < self.config.duration_us {
                self.queue.push(self.now + interval, EventKind::GcBroadcast);
            }
        }
    }

    fn on_timeout(&mut self, client_id: usize, attempt: u64) {
        if self.clients[client_id].attempt != attempt {
            return; // stale timeout for a finished attempt
        }
        match self.clients[client_id].phase {
            Phase::WaitingForLock => {
                // 2PL deadlock/starvation resolution: abort and retry.
                self.remove_waiter(client_id, attempt);
                self.abort_current(client_id, false);
                self.start_transaction(client_id);
            }
            Phase::CrashedDuringCommit => {
                // The servers' pending-write-lock timeout fired; the commitment
                // object decides abort and the locks are released (§H).
                self.abort_current(client_id, true);
                self.start_transaction(client_id);
            }
            _ => {}
        }
    }

    fn on_response(&mut self, client_id: usize, attempt: u64, outcome: OpResult) {
        if self.clients[client_id].attempt != attempt && attempt != 0 {
            return; // stale response
        }
        if attempt == 0 && self.clients[client_id].attempt == 0 {
            // Initial kick-off event.
            self.start_transaction(client_id);
            return;
        }
        if outcome == OpResult::Abort {
            self.abort_current(client_id, false);
            self.start_transaction(client_id);
            return;
        }
        match self.clients[client_id].phase {
            Phase::Executing | Phase::WaitingForLock => {
                self.clients[client_id].phase = Phase::Executing;
                if outcome == OpResult::Retry {
                    // The obstacle was an unfrozen lock: wait (by re-issuing
                    // the same operation) until the per-operation deadline.
                    if self.now <= self.clients[client_id].op_deadline {
                        let op = self.clients[client_id].ops[self.clients[client_id].next_op];
                        self.issue_request(client_id, op);
                    } else {
                        self.abort_current(client_id, false);
                        self.start_transaction(client_id);
                    }
                    return;
                }
                self.clients[client_id].next_op += 1;
                self.issue_next(client_id);
            }
            Phase::Committing => {
                self.clients[client_id].commit_pending -= 1;
                if self.clients[client_id].commit_pending == 0 {
                    if self.clients[client_id].commit_failed {
                        self.abort_current(client_id, false);
                    } else {
                        self.finish_commit(client_id);
                    }
                    self.start_transaction(client_id);
                }
            }
            Phase::CrashedDuringCommit => {}
        }
    }

    // -------------------------------------------------------- client flow ----

    fn start_transaction(&mut self, client_id: usize) {
        let ops_per_tx = self.config.ops_per_tx;
        let write_fraction = self.config.write_fraction;
        let keys = self.config.keys;
        let delta = self.config.delta_us;
        let now = self.now;

        let mut ops = Vec::with_capacity(ops_per_tx);
        for _ in 0..ops_per_tx {
            let key = Key(self.rng.gen_range(0..keys));
            let write = self.rng.gen_bool(write_fraction);
            ops.push(PlannedOp { key, write });
        }

        let client = &mut self.clients[client_id];
        client.attempt += 1;
        client.tx_id = TxId::fresh();
        client.ops = ops;
        client.next_op = 0;
        client.phase = Phase::Executing;
        client.reads.clear();
        client.writes.clear();
        client.locked_keys.clear();
        client.commit_pending = 0;
        client.commit_failed = false;
        let local_clock = if client.skew >= 0 {
            now.saturating_add(client.skew as u64)
        } else {
            now.saturating_sub(client.skew.unsigned_abs())
        }
        .max(1);
        client.ts = Timestamp::new(local_clock, client_id as u32 + 1);
        client.interval = TsSet::from_range(TsRange::new(
            Timestamp::new(local_clock, 0),
            Timestamp::new(local_clock.saturating_add(delta), u32::MAX),
        ));
        self.bucket_attempts += 1;

        self.issue_next(client_id);
    }

    fn issue_next(&mut self, client_id: usize) {
        let next_op = self.clients[client_id].next_op;
        if next_op >= self.clients[client_id].ops.len() {
            self.begin_commit(client_id);
            return;
        }
        let op = self.clients[client_id].ops[next_op];
        self.clients[client_id].op_deadline = self.now + self.config.lock_timeout_us;
        match self.config.protocol {
            Protocol::MvtoPlus if op.write => {
                // MVTO+ buffers writes locally: no message until commit.
                let value = self.rng.gen::<u64>() >> 1;
                let client = &mut self.clients[client_id];
                client.writes.push((op.key, value));
                client.next_op += 1;
                self.issue_next(client_id);
            }
            _ => self.issue_request(client_id, op),
        }
    }

    /// Sends one operation to the server owning the key, processes the
    /// concurrency-control decision, and schedules the response.
    fn issue_request(&mut self, client_id: usize, op: PlannedOp) {
        let attempt = self.clients[client_id].attempt;
        let tx_id = self.clients[client_id].tx_id;
        if self.config.network.sample_loss(&mut self.rng) {
            // The request is lost in flight: the server never sees it (no
            // server-side effect), and the client only discovers the loss
            // when its per-operation deadline passes — the same timeout +
            // presumed-abort discovery the real coordinator uses for a
            // dropped prepare response.
            self.messages += 1;
            let deadline = self.clients[client_id].op_deadline.max(self.now);
            self.queue.push(
                deadline + 1,
                EventKind::OpResponse {
                    client: client_id,
                    attempt,
                    outcome: OpResult::Abort,
                },
            );
            return;
        }
        let latency_out = self.config.network.sample_latency(&mut self.rng);
        let latency_back = self.config.network.sample_latency(&mut self.rng);
        let service = self.config.network.sample_service(&mut self.rng);
        let server_idx = self.server_for(op.key);
        let arrival = self.now + latency_out;
        let done = self.servers[server_idx].reserve(arrival, service);
        self.messages += 2;

        let outcome = match self.config.protocol {
            Protocol::MvtilEarly | Protocol::MvtilLate => {
                self.process_mvtil_op(client_id, server_idx, op, tx_id)
            }
            Protocol::MvtoPlus => self.process_mvto_read(client_id, server_idx, op.key),
            Protocol::TwoPhaseLocking => {
                match self.process_tpl_op(client_id, server_idx, op, attempt) {
                    Some(true) => OpResult::Ok,
                    Some(false) => OpResult::Abort,
                    None => {
                        // Blocked: the waiter was registered; a timeout guards it.
                        self.clients[client_id].phase = Phase::WaitingForLock;
                        self.queue.push(
                            self.now + self.config.lock_timeout_us,
                            EventKind::LockTimeout {
                                client: client_id,
                                attempt,
                            },
                        );
                        return;
                    }
                }
            }
        };
        self.queue.push(
            done + latency_back,
            EventKind::OpResponse {
                client: client_id,
                attempt,
                outcome,
            },
        );
    }

    fn process_mvtil_op(
        &mut self,
        client_id: usize,
        server_idx: usize,
        op: PlannedOp,
        tx_id: TxId,
    ) -> OpResult {
        let (Some(upper), Some(lower)) = (
            self.clients[client_id].interval.max(),
            self.clients[client_id].interval.min(),
        ) else {
            return OpResult::Abort;
        };
        let state = self.servers[server_idx].key(op.key);
        if op.write {
            let desired = self.clients[client_id].interval.clone();
            let reply = state.mvtil_write_lock(tx_id, &desired);
            if reply.granted.is_empty() {
                return if reply.blocked_unfrozen {
                    OpResult::Retry
                } else {
                    OpResult::Abort
                };
            }
            let client = &mut self.clients[client_id];
            client.note_locked(op.key);
            client.interval = client.interval.intersection(&reply.granted);
            let value = (client.attempt << 8) ^ client_id as u64;
            client.writes.push((op.key, value));
            if client.interval.is_empty() {
                OpResult::Abort
            } else {
                OpResult::Ok
            }
        } else {
            let reply = state.mvtil_read(tx_id, upper, lower);
            if reply.failed {
                return OpResult::Abort;
            }
            if reply.granted.is_empty() {
                return if reply.blocked_unfrozen {
                    OpResult::Retry
                } else {
                    OpResult::Abort
                };
            }
            let client = &mut self.clients[client_id];
            client.note_locked(op.key);
            client.reads.push((op.key, reply.version));
            client.interval = client.interval.intersection(&reply.granted);
            if client.interval.is_empty() {
                OpResult::Abort
            } else {
                OpResult::Ok
            }
        }
    }

    fn process_mvto_read(&mut self, client_id: usize, server_idx: usize, key: Key) -> OpResult {
        let ts = self.clients[client_id].ts;
        let state = self.servers[server_idx].key(key);
        match state.mvto_read(ts) {
            Some(version) => {
                self.clients[client_id].reads.push((key, version));
                OpResult::Ok
            }
            None => OpResult::Abort,
        }
    }

    /// Returns `Some(ok)` when the operation completed, `None` when it blocked.
    fn process_tpl_op(
        &mut self,
        client_id: usize,
        server_idx: usize,
        op: PlannedOp,
        attempt: u64,
    ) -> Option<bool> {
        let state = self.servers[server_idx].key(op.key);
        if state.tpl_can_lock(client_id, op.write) {
            state.tpl_lock(client_id, op.write);
            let client = &mut self.clients[client_id];
            client.note_locked(op.key);
            if op.write {
                let value = (client.attempt << 8) ^ client_id as u64;
                client.writes.push((op.key, value));
            } else {
                client.reads.push((op.key, Timestamp::ZERO));
            }
            Some(true)
        } else {
            state.tpl_waiters.push(Waiter {
                client: client_id,
                attempt,
                write: op.write,
            });
            None
        }
    }

    // ------------------------------------------------------------ commit ----

    fn begin_commit(&mut self, client_id: usize) {
        match self.config.protocol {
            Protocol::MvtilEarly | Protocol::MvtilLate => self.commit_mvtil(client_id),
            Protocol::MvtoPlus => self.commit_mvto(client_id),
            Protocol::TwoPhaseLocking => self.commit_tpl(client_id),
        }
    }

    fn commit_mvtil(&mut self, client_id: usize) {
        let interval = self.clients[client_id].interval.clone();
        let commit_ts = match self.config.protocol {
            Protocol::MvtilLate => interval.max(),
            _ => interval.min(),
        };
        let Some(commit_ts) = commit_ts else {
            self.abort_current(client_id, false);
            self.start_transaction(client_id);
            return;
        };
        // Coordinator failure injection (§H): the coordinator dies after
        // acquiring its locks but before informing servers of the decision.
        if self.config.coordinator_failure_probability > 0.0
            && self
                .rng
                .gen_bool(self.config.coordinator_failure_probability)
        {
            let attempt = self.clients[client_id].attempt;
            self.clients[client_id].phase = Phase::CrashedDuringCommit;
            self.queue.push(
                self.now + self.config.lock_timeout_us,
                EventKind::LockTimeout {
                    client: client_id,
                    attempt,
                },
            );
            return;
        }

        let tx_id = self.clients[client_id].tx_id;
        let writes = self.clients[client_id].writes.clone();
        let reads = self.clients[client_id].reads.clone();

        // One freeze-write-lock round trip per written key (§H: two round
        // trips per object in the write set, one to lock and one to freeze).
        let mut pending = 0;
        let attempt = self.clients[client_id].attempt;
        for (key, value) in &writes {
            let server_idx = self.server_for(*key);
            let latency_out = self.config.network.sample_latency(&mut self.rng);
            let latency_back = self.config.network.sample_latency(&mut self.rng);
            let service = self.config.network.sample_service(&mut self.rng);
            let arrival = self.now + latency_out;
            let done = self.servers[server_idx].reserve(arrival, service);
            self.messages += 2;
            self.servers[server_idx]
                .key(*key)
                .mvtil_commit_write(tx_id, commit_ts, *value);
            self.queue.push(
                done + latency_back,
                EventKind::OpResponse {
                    client: client_id,
                    attempt,
                    outcome: OpResult::Ok,
                },
            );
            pending += 1;
        }
        // Garbage collection of read locks (piggybacked on release messages).
        for (key, version) in &reads {
            let server_idx = self.server_for(*key);
            self.servers[server_idx]
                .key(*key)
                .mvtil_commit_read(tx_id, *version, commit_ts);
            self.messages += 1;
        }
        self.clients[client_id].ts = commit_ts;
        if pending == 0 {
            // Read-only transactions commit without the extra round.
            self.finish_commit(client_id);
            self.start_transaction(client_id);
        } else {
            self.clients[client_id].phase = Phase::Committing;
            self.clients[client_id].commit_pending = pending;
        }
    }

    fn commit_mvto(&mut self, client_id: usize) {
        let ts = self.clients[client_id].ts;
        let writes = self.clients[client_id].writes.clone();
        if writes.is_empty() {
            self.finish_commit(client_id);
            self.start_transaction(client_id);
            return;
        }
        let attempt = self.clients[client_id].attempt;
        let mut pending = 0;
        let mut failed = false;
        for (key, value) in &writes {
            let server_idx = self.server_for(*key);
            let latency_out = self.config.network.sample_latency(&mut self.rng);
            let latency_back = self.config.network.sample_latency(&mut self.rng);
            let service = self.config.network.sample_service(&mut self.rng);
            let arrival = self.now + latency_out;
            let done = self.servers[server_idx].reserve(arrival, service);
            self.messages += 2;
            if !self.servers[server_idx].key(*key).mvto_write(ts, *value) {
                failed = true;
            }
            self.queue.push(
                done + latency_back,
                EventKind::OpResponse {
                    client: client_id,
                    attempt,
                    outcome: OpResult::Ok,
                },
            );
            pending += 1;
        }
        self.clients[client_id].phase = Phase::Committing;
        self.clients[client_id].commit_pending = pending;
        self.clients[client_id].commit_failed = failed;
    }

    fn commit_tpl(&mut self, client_id: usize) {
        // Install the buffered writes and release every lock; waiters wake up.
        let writes = self.clients[client_id].writes.clone();
        let locked = self.clients[client_id].locked_keys.clone();
        for (key, value) in &writes {
            let server_idx = self.server_for(*key);
            self.messages += 2;
            self.servers[server_idx].key(*key).tpl_value = Some(*value);
        }
        for key in &locked {
            let server_idx = self.server_for(*key);
            self.servers[server_idx].key(*key).tpl_unlock(client_id);
            self.messages += 1;
        }
        self.finish_commit(client_id);
        for key in locked {
            self.wake_tpl_waiters(key);
        }
        self.start_transaction(client_id);
    }

    fn finish_commit(&mut self, client_id: usize) {
        self.committed += 1;
        self.bucket_committed += 1;
        let _ = client_id;
    }

    fn abort_current(&mut self, client_id: usize, commitment_decided: bool) {
        self.aborted += 1;
        if commitment_decided {
            self.commitment_aborts += 1;
        }
        let tx_id = self.clients[client_id].tx_id;
        let locked = self.clients[client_id].locked_keys.clone();
        match self.config.protocol {
            Protocol::MvtilEarly | Protocol::MvtilLate => {
                for key in &locked {
                    let server_idx = self.server_for(*key);
                    self.servers[server_idx].key(*key).mvtil_release(tx_id);
                    self.messages += 1;
                }
            }
            Protocol::TwoPhaseLocking => {
                for key in &locked {
                    let server_idx = self.server_for(*key);
                    self.servers[server_idx].key(*key).tpl_unlock(client_id);
                    self.messages += 1;
                }
                for key in locked {
                    self.wake_tpl_waiters(key);
                }
            }
            Protocol::MvtoPlus => {
                // Read timestamps deliberately stay behind (that is MVTO+).
            }
        }
    }

    fn wake_tpl_waiters(&mut self, key: Key) {
        let server_idx = self.server_for(key);
        while let Some(waiter) = self.next_grantable_waiter(server_idx, key) {
            // Grant the lock and schedule the (delayed) response to the waiter.
            let state = self.servers[server_idx].key(key);
            state.tpl_lock(waiter.client, waiter.write);
            let latency_back = self.config.network.sample_latency(&mut self.rng);
            let service = self.config.network.sample_service(&mut self.rng);
            let done = self.servers[server_idx].reserve(self.now, service);
            let client = &mut self.clients[waiter.client];
            client.note_locked(key);
            if waiter.write {
                let value = (client.attempt << 8) ^ waiter.client as u64;
                client.writes.push((key, value));
            } else {
                client.reads.push((key, Timestamp::ZERO));
            }
            self.queue.push(
                done + latency_back,
                EventKind::OpResponse {
                    client: waiter.client,
                    attempt: waiter.attempt,
                    outcome: OpResult::Ok,
                },
            );
            // An exclusive grant blocks everything behind it.
            if waiter.write {
                break;
            }
        }
    }

    /// Pops the first waiter of `key` that is still current and whose lock
    /// request is now grantable.
    fn next_grantable_waiter(&mut self, server_idx: usize, key: Key) -> Option<Waiter> {
        let clients = &self.clients;
        let state = self.servers[server_idx].key(key);
        // Drop stale waiters (their transaction attempt already ended).
        state.tpl_waiters.retain(|w| {
            clients[w.client].attempt == w.attempt
                && clients[w.client].phase == Phase::WaitingForLock
        });
        let position = state
            .tpl_waiters
            .iter()
            .position(|w| state.tpl_can_lock(w.client, w.write))?;
        Some(state.tpl_waiters.remove(position))
    }

    fn remove_waiter(&mut self, client_id: usize, attempt: u64) {
        for server in &mut self.servers {
            for state in server.keys.values_mut() {
                state
                    .tpl_waiters
                    .retain(|w| !(w.client == client_id && w.attempt == attempt));
            }
        }
    }

    fn server_for(&self, key: Key) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % self.servers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(protocol: Protocol) -> SimConfig {
        SimConfig::local_cluster(protocol)
            .clients(20)
            .keys(500)
            .duration_secs(1)
            .seed(7)
    }

    #[test]
    fn all_protocols_make_progress() {
        for protocol in Protocol::all() {
            let metrics = Simulation::new(quick(protocol)).run();
            assert!(
                metrics.committed > 50,
                "{} committed only {} transactions",
                protocol.name(),
                metrics.committed
            );
            assert!(metrics.commit_rate() > 0.2, "{}", protocol.name());
            assert!(metrics.messages > 0);
        }
    }

    #[test]
    fn runs_are_deterministic_for_a_seed() {
        let a = Simulation::new(quick(Protocol::MvtilEarly)).run();
        let b = Simulation::new(quick(Protocol::MvtilEarly)).run();
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.aborted, b.aborted);
        assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn read_only_workload_commits_everything() {
        for protocol in Protocol::all() {
            let config = quick(protocol).write_fraction(0.0);
            let metrics = Simulation::new(config).run();
            assert!(
                metrics.commit_rate() > 0.99,
                "{} must commit essentially all read-only transactions (got {})",
                protocol.name(),
                metrics.commit_rate()
            );
        }
    }

    #[test]
    fn mvtil_beats_mvto_under_contention() {
        // Moderate contention: small key space, writes present. The headline
        // claim of §8.4: MVTIL's commit rate stays higher than MVTO+'s.
        let base = |p| {
            SimConfig::local_cluster(p)
                .clients(60)
                .keys(300)
                .write_fraction(0.5)
                .duration_secs(3)
                .seed(11)
        };
        let mvtil = Simulation::new(base(Protocol::MvtilEarly)).run();
        let mvto = Simulation::new(base(Protocol::MvtoPlus)).run();
        assert!(
            mvtil.commit_rate() > mvto.commit_rate(),
            "MVTIL commit rate {} must exceed MVTO+ {}",
            mvtil.commit_rate(),
            mvto.commit_rate()
        );
    }

    #[test]
    fn gc_bounds_state_size() {
        let with_gc = SimConfig::local_cluster(Protocol::MvtilEarly)
            .clients(30)
            .keys(200)
            .write_fraction(0.5)
            .duration_secs(4)
            .gc_every_secs(Some(1))
            .gc_lag_secs(1)
            .seed(3);
        let without_gc = with_gc.clone().gc_every_secs(None);
        let gc_metrics = Simulation::new(with_gc).run();
        let nogc_metrics = Simulation::new(without_gc).run();
        assert!(
            gc_metrics.final_versions < nogc_metrics.final_versions,
            "GC must bound the number of versions ({} vs {})",
            gc_metrics.final_versions,
            nogc_metrics.final_versions
        );
        assert!(
            gc_metrics.final_locks < nogc_metrics.final_locks,
            "GC must bound the number of locks ({} vs {})",
            gc_metrics.final_locks,
            nogc_metrics.final_locks
        );
    }

    #[test]
    fn coordinator_failures_are_resolved_by_the_commitment_object() {
        let config = SimConfig::local_cluster(Protocol::MvtilEarly)
            .clients(20)
            .keys(500)
            .duration_secs(2)
            .coordinator_failures(0.05)
            .seed(5);
        let metrics = Simulation::new(config).run();
        assert!(metrics.commitment_aborts > 0, "failures must be injected");
        // The system keeps making progress despite coordinator crashes.
        assert!(metrics.committed > 50);
    }

    #[test]
    fn series_is_sampled() {
        let metrics = Simulation::new(quick(Protocol::MvtilLate)).run();
        assert!(!metrics.series.is_empty());
        for point in &metrics.series {
            assert!(point.time_secs > 0.0);
            assert!(point.commit_rate <= 1.0);
        }
    }
}
