//! Network and machine profiles standing in for the paper's test beds (§8.2).

use mvtl_faults::FaultSpec;
use rand::Rng;

/// Latency / capacity profile of a simulated deployment.
///
/// The profile captures what differs between the paper's two test beds:
///
/// * the **local cluster** has a fast, predictable 1 Gbps network and large
///   multi-core servers;
/// * the **public cloud** has higher and much more variable latencies and tiny
///   single-vCPU servers, which is why "MVTIL's advantages are bigger in the
///   cloud test bed that has limited processing power and unpredictable
///   network latencies" (§8.5).
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkProfile {
    /// Short name used in reports.
    pub name: &'static str,
    /// Mean one-way network latency in microseconds.
    pub mean_latency_us: f64,
    /// Jitter: the one-way latency is sampled uniformly from
    /// `[mean − jitter, mean + jitter]`, plus an occasional heavy-tail spike.
    pub jitter_us: f64,
    /// Probability that a message experiences a latency spike.
    pub spike_probability: f64,
    /// Spike multiplier applied to the mean latency.
    pub spike_factor: f64,
    /// Server-side service time per request, in microseconds.
    pub service_time_us: f64,
    /// Number of request-processing cores per server.
    pub server_cores: usize,
    /// Maximum clock skew between client machines, in microseconds (clients
    /// stamp their MVTIL intervals with these imperfect clocks).
    pub clock_skew_us: u64,
    /// Probability that a request message is **lost** in flight: it never
    /// reaches the server (no server-side effect), and the client discovers
    /// the loss only when its per-operation deadline passes. Mirrors the
    /// fault layer's `drop:` clause.
    pub loss_probability: f64,
    /// Probability of an extra per-message **delay** (the fault layer's
    /// `delay:` clause), on top of the ordinary latency distribution.
    pub delay_probability: f64,
    /// Maximum extra delay in microseconds; the injected delay is sampled
    /// uniformly from `[1, delay_max_us]`.
    pub delay_max_us: u64,
    /// Probability that a server **stalls** while serving a request (the
    /// fault layer's `stall:` clause).
    pub stall_probability: f64,
    /// Stall length in microseconds.
    pub stall_us: u64,
    /// Probability that a message crosses a transient **partition** and pays
    /// `partition_us` of extra one-way latency.
    pub partition_probability: f64,
    /// Extra one-way latency across a partition, in microseconds.
    pub partition_us: u64,
}

impl NetworkProfile {
    /// The enterprise-style local cluster of §8.2.
    #[must_use]
    pub fn local_cluster() -> Self {
        NetworkProfile {
            name: "local",
            mean_latency_us: 120.0,
            jitter_us: 40.0,
            spike_probability: 0.002,
            spike_factor: 8.0,
            service_time_us: 25.0,
            server_cores: 16,
            clock_skew_us: 500,
            loss_probability: 0.0,
            delay_probability: 0.0,
            delay_max_us: 0,
            stall_probability: 0.0,
            stall_us: 0,
            partition_probability: 0.0,
            partition_us: 0,
        }
    }

    /// The shared public-cloud environment of §8.2 (t2.micro-like servers).
    #[must_use]
    pub fn public_cloud() -> Self {
        NetworkProfile {
            name: "cloud",
            mean_latency_us: 600.0,
            jitter_us: 400.0,
            spike_probability: 0.02,
            spike_factor: 10.0,
            service_time_us: 60.0,
            server_cores: 1,
            clock_skew_us: 2_000,
            loss_probability: 0.0,
            delay_probability: 0.0,
            delay_max_us: 0,
            stall_probability: 0.0,
            stall_us: 0,
            partition_probability: 0.0,
            partition_us: 0,
        }
    }

    /// Maps a fault schedule onto this profile, mirroring the real engine's
    /// `FaultyBackend` semantics in network terms: `delay:` becomes extra
    /// per-message latency, `drop:` becomes request loss (discovered by the
    /// client's operation timeout), `stall:` becomes server-side stalls, and
    /// `skew:` widens the client clock-skew bound (ticks read as µs here).
    /// `crash:` is a coordinator-side fault and is mapped by
    /// [`SimConfig::with_fault_spec`](crate::SimConfig::with_fault_spec).
    #[must_use]
    pub fn with_faults(mut self, spec: &FaultSpec) -> Self {
        if let Some((p, max_us)) = spec.delay {
            self.delay_probability = p;
            self.delay_max_us = max_us.max(1);
        }
        if let Some((p, _hold_ms)) = spec.drop_prepare {
            // The hold time is irrelevant here: a lost request is simply
            // never answered, and the op deadline plays the coordinator-
            // timeout role.
            self.loss_probability = p;
        }
        if let Some((p, stall_ms)) = spec.stall {
            self.stall_probability = p;
            self.stall_us = stall_ms.saturating_mul(1_000);
        }
        if spec.skew_ticks > 0 {
            self.clock_skew_us = spec.skew_ticks;
        }
        self
    }

    /// Samples a one-way message latency in microseconds, including any
    /// injected delay and partition crossings.
    pub fn sample_latency<R: Rng>(&self, rng: &mut R) -> u64 {
        let base = self.mean_latency_us + rng.gen_range(-self.jitter_us..=self.jitter_us);
        let mut total = if rng.gen_bool(self.spike_probability) {
            base * self.spike_factor
        } else {
            base
        };
        if self.delay_probability > 0.0 && rng.gen_bool(self.delay_probability) {
            total += rng.gen_range(1..=self.delay_max_us.max(1)) as f64;
        }
        if self.partition_probability > 0.0 && rng.gen_bool(self.partition_probability) {
            total += self.partition_us as f64;
        }
        total.max(1.0) as u64
    }

    /// Samples a server-side service time in microseconds, including any
    /// injected stall.
    pub fn sample_service<R: Rng>(&self, rng: &mut R) -> u64 {
        let mut t = self.service_time_us * rng.gen_range(0.7..1.5);
        if self.stall_probability > 0.0 && rng.gen_bool(self.stall_probability) {
            t += self.stall_us as f64;
        }
        t.max(1.0) as u64
    }

    /// Whether a request message is lost in flight.
    pub fn sample_loss<R: Rng>(&self, rng: &mut R) -> bool {
        self.loss_probability > 0.0 && rng.gen_bool(self.loss_probability)
    }

    /// Samples a per-client constant clock skew in microseconds (signed).
    pub fn sample_skew<R: Rng>(&self, rng: &mut R) -> i64 {
        if self.clock_skew_us == 0 {
            0
        } else {
            rng.gen_range(-(self.clock_skew_us as i64)..=(self.clock_skew_us as i64))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cloud_is_slower_and_smaller_than_local() {
        let local = NetworkProfile::local_cluster();
        let cloud = NetworkProfile::public_cloud();
        assert!(cloud.mean_latency_us > local.mean_latency_us);
        assert!(cloud.server_cores < local.server_cores);
        assert!(cloud.jitter_us > local.jitter_us);
    }

    #[test]
    fn samples_are_positive_and_bounded() {
        let mut rng = StdRng::seed_from_u64(7);
        for profile in [
            NetworkProfile::local_cluster(),
            NetworkProfile::public_cloud(),
        ] {
            for _ in 0..1_000 {
                let lat = profile.sample_latency(&mut rng);
                assert!(lat >= 1);
                assert!(
                    lat as f64
                        <= (profile.mean_latency_us + profile.jitter_us) * profile.spike_factor
                            + 1.0
                );
                let service = profile.sample_service(&mut rng);
                assert!(service >= 1);
                let skew = profile.sample_skew(&mut rng);
                assert!(skew.unsigned_abs() <= profile.clock_skew_us);
            }
        }
    }

    #[test]
    fn latency_is_deterministic_per_seed() {
        let profile = NetworkProfile::public_cloud();
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..32).map(|_| profile.sample_latency(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..32).map(|_| profile.sample_latency(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
