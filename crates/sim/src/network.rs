//! Network and machine profiles standing in for the paper's test beds (§8.2).

use rand::Rng;

/// Latency / capacity profile of a simulated deployment.
///
/// The profile captures what differs between the paper's two test beds:
///
/// * the **local cluster** has a fast, predictable 1 Gbps network and large
///   multi-core servers;
/// * the **public cloud** has higher and much more variable latencies and tiny
///   single-vCPU servers, which is why "MVTIL's advantages are bigger in the
///   cloud test bed that has limited processing power and unpredictable
///   network latencies" (§8.5).
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkProfile {
    /// Short name used in reports.
    pub name: &'static str,
    /// Mean one-way network latency in microseconds.
    pub mean_latency_us: f64,
    /// Jitter: the one-way latency is sampled uniformly from
    /// `[mean − jitter, mean + jitter]`, plus an occasional heavy-tail spike.
    pub jitter_us: f64,
    /// Probability that a message experiences a latency spike.
    pub spike_probability: f64,
    /// Spike multiplier applied to the mean latency.
    pub spike_factor: f64,
    /// Server-side service time per request, in microseconds.
    pub service_time_us: f64,
    /// Number of request-processing cores per server.
    pub server_cores: usize,
    /// Maximum clock skew between client machines, in microseconds (clients
    /// stamp their MVTIL intervals with these imperfect clocks).
    pub clock_skew_us: u64,
}

impl NetworkProfile {
    /// The enterprise-style local cluster of §8.2.
    #[must_use]
    pub fn local_cluster() -> Self {
        NetworkProfile {
            name: "local",
            mean_latency_us: 120.0,
            jitter_us: 40.0,
            spike_probability: 0.002,
            spike_factor: 8.0,
            service_time_us: 25.0,
            server_cores: 16,
            clock_skew_us: 500,
        }
    }

    /// The shared public-cloud environment of §8.2 (t2.micro-like servers).
    #[must_use]
    pub fn public_cloud() -> Self {
        NetworkProfile {
            name: "cloud",
            mean_latency_us: 600.0,
            jitter_us: 400.0,
            spike_probability: 0.02,
            spike_factor: 10.0,
            service_time_us: 60.0,
            server_cores: 1,
            clock_skew_us: 2_000,
        }
    }

    /// Samples a one-way message latency in microseconds.
    pub fn sample_latency<R: Rng>(&self, rng: &mut R) -> u64 {
        let base = self.mean_latency_us + rng.gen_range(-self.jitter_us..=self.jitter_us);
        let spiked = if rng.gen_bool(self.spike_probability) {
            base * self.spike_factor
        } else {
            base
        };
        spiked.max(1.0) as u64
    }

    /// Samples a server-side service time in microseconds.
    pub fn sample_service<R: Rng>(&self, rng: &mut R) -> u64 {
        let t = self.service_time_us * rng.gen_range(0.7..1.5);
        t.max(1.0) as u64
    }

    /// Samples a per-client constant clock skew in microseconds (signed).
    pub fn sample_skew<R: Rng>(&self, rng: &mut R) -> i64 {
        if self.clock_skew_us == 0 {
            0
        } else {
            rng.gen_range(-(self.clock_skew_us as i64)..=(self.clock_skew_us as i64))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cloud_is_slower_and_smaller_than_local() {
        let local = NetworkProfile::local_cluster();
        let cloud = NetworkProfile::public_cloud();
        assert!(cloud.mean_latency_us > local.mean_latency_us);
        assert!(cloud.server_cores < local.server_cores);
        assert!(cloud.jitter_us > local.jitter_us);
    }

    #[test]
    fn samples_are_positive_and_bounded() {
        let mut rng = StdRng::seed_from_u64(7);
        for profile in [
            NetworkProfile::local_cluster(),
            NetworkProfile::public_cloud(),
        ] {
            for _ in 0..1_000 {
                let lat = profile.sample_latency(&mut rng);
                assert!(lat >= 1);
                assert!(
                    lat as f64
                        <= (profile.mean_latency_us + profile.jitter_us) * profile.spike_factor
                            + 1.0
                );
                let service = profile.sample_service(&mut rng);
                assert!(service >= 1);
                let skew = profile.sample_skew(&mut rng);
                assert!(skew.unsigned_abs() <= profile.clock_skew_us);
            }
        }
    }

    #[test]
    fn latency_is_deterministic_per_seed() {
        let profile = NetworkProfile::public_cloud();
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..32).map(|_| profile.sample_latency(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..32).map(|_| profile.sample_latency(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
