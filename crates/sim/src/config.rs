//! Simulation configuration: the experimental parameters of §8.3.

use crate::NetworkProfile;
use mvtl_faults::FaultSpec;

/// Which concurrency-control protocol the simulated system runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Distributed MVTIL committing at the smallest locked timestamp.
    MvtilEarly,
    /// Distributed MVTIL committing at the largest locked timestamp.
    MvtilLate,
    /// Multiversion timestamp ordering (MVTO+).
    MvtoPlus,
    /// Strict two-phase locking with timeouts.
    TwoPhaseLocking,
}

impl Protocol {
    /// Human-readable name matching the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Protocol::MvtilEarly => "MVTIL-early",
            Protocol::MvtilLate => "MVTIL-late",
            Protocol::MvtoPlus => "MVTO+",
            Protocol::TwoPhaseLocking => "2PL",
        }
    }

    /// All protocols compared in the paper's figures, in plotting order.
    #[must_use]
    pub fn all() -> [Protocol; 4] {
        [
            Protocol::MvtoPlus,
            Protocol::TwoPhaseLocking,
            Protocol::MvtilEarly,
            Protocol::MvtilLate,
        ]
    }
}

/// The parameters fixed in each experiment (§8.3): protocol, number of clients,
/// transaction size, write fraction, key-space size and number of servers —
/// plus the simulation-specific knobs (network profile, duration, Δ, garbage
/// collection period, failure injection).
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Protocol under test.
    pub protocol: Protocol,
    /// Number of closed-loop clients.
    pub clients: usize,
    /// Operations per transaction (the paper uses 20, and 8 for Figure 4).
    pub ops_per_tx: usize,
    /// Fraction of operations that are writes, in `[0, 1]`.
    pub write_fraction: f64,
    /// Number of distinct keys.
    pub keys: u64,
    /// Number of storage servers (data is partitioned by key hash).
    pub servers: usize,
    /// Network / machine profile.
    pub network: NetworkProfile,
    /// Virtual duration of the measured run, in microseconds.
    pub duration_us: u64,
    /// MVTIL interval width Δ, in microseconds (the paper uses 5 ms).
    pub delta_us: u64,
    /// Lock-wait timeout for 2PL (and pending-write-lock timeout for the
    /// commitment object), in microseconds.
    pub lock_timeout_us: u64,
    /// Garbage-collection (timestamp-service) period in microseconds;
    /// `None` disables purging, as in the "GC off" runs of Figures 6 and 7.
    pub gc_interval_us: Option<u64>,
    /// Lag `K` of the timestamp service: versions older than `now − K` are
    /// purged (§8.1 uses 15 s locally and 60 s in the cloud).
    pub gc_lag_us: u64,
    /// Probability that a client "crashes" between acquiring its commit-time
    /// locks and informing the servers, exercising the §H timeout path.
    pub coordinator_failure_probability: f64,
    /// Seed for the simulation's random number generator (workload and
    /// latency sampling are fully deterministic given the seed).
    pub seed: u64,
    /// How often the state-size series (locks, versions) is sampled, in
    /// microseconds.
    pub sample_interval_us: u64,
}

impl SimConfig {
    /// Configuration modelled after the paper's local test bed (§8.2): three
    /// well-provisioned servers on a fast, predictable network.
    #[must_use]
    pub fn local_cluster(protocol: Protocol) -> Self {
        SimConfig {
            protocol,
            clients: 90,
            ops_per_tx: 20,
            write_fraction: 0.25,
            keys: 10_000,
            servers: 3,
            network: NetworkProfile::local_cluster(),
            duration_us: 5_000_000,
            delta_us: 5_000,
            lock_timeout_us: 10_000,
            gc_interval_us: Some(15_000_000),
            gc_lag_us: 15_000_000,
            coordinator_failure_probability: 0.0,
            seed: 0xC0FFEE,
            sample_interval_us: 1_000_000,
        }
    }

    /// Configuration modelled after the paper's cloud test bed (§8.2): many
    /// small single-core servers on a slower, jittery network.
    #[must_use]
    pub fn public_cloud(protocol: Protocol) -> Self {
        SimConfig {
            clients: 400,
            keys: 50_000,
            servers: 8,
            network: NetworkProfile::public_cloud(),
            gc_interval_us: Some(60_000_000),
            gc_lag_us: 60_000_000,
            ..SimConfig::local_cluster(protocol)
        }
    }

    /// Sets the number of clients.
    #[must_use]
    pub fn clients(mut self, clients: usize) -> Self {
        self.clients = clients.max(1);
        self
    }

    /// Sets the number of operations per transaction.
    #[must_use]
    pub fn ops_per_tx(mut self, ops: usize) -> Self {
        self.ops_per_tx = ops.max(1);
        self
    }

    /// Sets the fraction of write operations.
    #[must_use]
    pub fn write_fraction(mut self, fraction: f64) -> Self {
        self.write_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Sets the key-space size.
    #[must_use]
    pub fn keys(mut self, keys: u64) -> Self {
        self.keys = keys.max(1);
        self
    }

    /// Sets the number of servers.
    #[must_use]
    pub fn servers(mut self, servers: usize) -> Self {
        self.servers = servers.max(1);
        self
    }

    /// Sets the measured duration in (virtual) seconds.
    #[must_use]
    pub fn duration_secs(mut self, secs: u64) -> Self {
        self.duration_us = secs * 1_000_000;
        self
    }

    /// Sets the garbage-collection period in (virtual) seconds; `None`
    /// disables purging.
    #[must_use]
    pub fn gc_every_secs(mut self, secs: Option<u64>) -> Self {
        self.gc_interval_us = secs.map(|s| s * 1_000_000);
        self
    }

    /// Sets the timestamp-service lag `K` in (virtual) seconds.
    #[must_use]
    pub fn gc_lag_secs(mut self, secs: u64) -> Self {
        self.gc_lag_us = secs * 1_000_000;
        self
    }

    /// Sets the MVTIL interval width Δ in microseconds.
    #[must_use]
    pub fn delta_us(mut self, delta: u64) -> Self {
        self.delta_us = delta.max(1);
        self
    }

    /// Sets the coordinator-failure probability (§H failure handling).
    #[must_use]
    pub fn coordinator_failures(mut self, probability: f64) -> Self {
        self.coordinator_failure_probability = probability.clamp(0.0, 1.0);
        self
    }

    /// Mirrors a fault schedule onto the simulation, matching the real
    /// engine's `FaultyBackend` semantics: `delay`/`drop`/`stall`/`skew`
    /// clauses map onto the network profile
    /// ([`NetworkProfile::with_faults`]) and `crash:` maps onto the
    /// coordinator-failure probability (a coordinator dying mid-commit is
    /// the sim's analogue of a participant losing its volatile prepare
    /// state — both are resolved by the §H timeout + presumed abort).
    #[must_use]
    pub fn with_fault_spec(mut self, spec: &FaultSpec) -> Self {
        self.network = self.network.with_faults(spec);
        if let Some(p) = spec.crash_mid_prepare {
            self.coordinator_failure_probability = p.clamp(0.0, 1.0);
        }
        self
    }

    /// Sets the random seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_follow_the_paper() {
        let local = SimConfig::local_cluster(Protocol::MvtilEarly);
        assert_eq!(local.servers, 3);
        assert_eq!(local.ops_per_tx, 20);
        assert_eq!(local.keys, 10_000);
        let cloud = SimConfig::public_cloud(Protocol::MvtoPlus);
        assert_eq!(cloud.servers, 8);
        assert_eq!(cloud.keys, 50_000);
        assert!(cloud.gc_lag_us > local.gc_lag_us);
    }

    #[test]
    fn builders_clamp_inputs() {
        let c = SimConfig::local_cluster(Protocol::TwoPhaseLocking)
            .clients(0)
            .keys(0)
            .servers(0)
            .write_fraction(7.0)
            .ops_per_tx(0)
            .coordinator_failures(-1.0);
        assert_eq!(c.clients, 1);
        assert_eq!(c.keys, 1);
        assert_eq!(c.servers, 1);
        assert_eq!(c.ops_per_tx, 1);
        assert_eq!(c.write_fraction, 1.0);
        assert_eq!(c.coordinator_failure_probability, 0.0);
    }

    #[test]
    fn protocol_names() {
        assert_eq!(Protocol::MvtilEarly.name(), "MVTIL-early");
        assert_eq!(Protocol::all().len(), 4);
    }
}
