//! # mvtl-sim
//!
//! A discrete-event simulation of the **distributed** MVTL system of §7/§H and
//! of the test beds used in the paper's evaluation (§8.2).
//!
//! The paper evaluates the distributed MVTIL algorithm on two physical test
//! beds (a three-machine local cluster and a fleet of EC2 `t2.micro`
//! instances). Neither is available to this reproduction, so — per the
//! substitution rules recorded in `DESIGN.md` — this crate provides the closest
//! synthetic equivalent: a deterministic discrete-event simulator in which
//!
//! * **clients** execute transactions in a closed loop (§8.3), one transaction
//!   at a time, issuing per-key requests to servers;
//! * **servers** are partitioned by key hash, have a bounded number of service
//!   cores and a per-request service time, and keep the real per-key state:
//!   the interval lock table of [`mvtl_locks`], the version chains of
//!   [`mvtl_storage`], MVTO+ read timestamps, or single-version 2PL locks;
//! * the **network** adds latency sampled from a profile
//!   ([`NetworkProfile::local_cluster`] ≈ the 1 Gbps LAN,
//!   [`NetworkProfile::public_cloud`] ≈ the shared cloud with unpredictable
//!   latencies);
//! * a **timestamp service** periodically broadcasts `T = now − K`, purging old
//!   versions and lock state (§8.1);
//! * a **commitment object** per transaction decides commit/abort, and
//!   coordinator-failure injection exercises the timeout path of §H.
//!
//! Three protocols are simulated, matching §8: distributed MVTIL (early/late),
//! MVTO+, and 2PL. The simulator reports the metrics the paper plots:
//! throughput, commit rate, and lock/version counts over time.
//!
//! Because all concurrency-control decisions are executed by the same data
//! structures as the centralized engines, the *relative* behaviour of the
//! protocols (who aborts, who waits, who scales) is reproduced even though
//! absolute numbers depend on the latency profile rather than real hardware.
//!
//! ```
//! use mvtl_sim::{Protocol, SimConfig, Simulation};
//!
//! let config = SimConfig::local_cluster(Protocol::MvtilEarly)
//!     .clients(32)
//!     .keys(1_000)
//!     .duration_secs(5);
//! let metrics = Simulation::new(config).run();
//! assert!(metrics.committed > 0);
//! assert!(metrics.commit_rate() > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod event;
mod metrics;
mod network;
mod server;
mod simulation;

pub use config::{Protocol, SimConfig};
pub use metrics::{SeriesPoint, SimMetrics};
pub use network::NetworkProfile;
pub use simulation::Simulation;
