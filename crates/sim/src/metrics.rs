//! Metrics reported by the simulation: exactly what the paper plots.

/// One sample of the time series collected during a run (used for Figures 6
/// and 7: state size and performance as time passes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Virtual time of the sample, in seconds from the start of the run.
    pub time_secs: f64,
    /// Transactions committed during the preceding sample interval, scaled to
    /// transactions per second.
    pub throughput_tps: f64,
    /// Commit rate during the preceding sample interval.
    pub commit_rate: f64,
    /// Total interval-lock entries stored across all servers.
    pub locks: usize,
    /// Total versions stored across all servers.
    pub versions: usize,
}

/// Aggregate metrics of one simulated run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimMetrics {
    /// Protocol name.
    pub protocol: &'static str,
    /// Committed transactions during the measured window.
    pub committed: u64,
    /// Aborted transaction attempts during the measured window.
    pub aborted: u64,
    /// Virtual duration of the measured window, in seconds.
    pub duration_secs: f64,
    /// Time series sampled during the run.
    pub series: Vec<SeriesPoint>,
    /// Final number of lock entries across all servers.
    pub final_locks: usize,
    /// Final number of versions across all servers.
    pub final_versions: usize,
    /// Total messages exchanged between clients and servers.
    pub messages: u64,
    /// Transactions aborted specifically because the commitment object decided
    /// abort after a coordinator failure (§H).
    pub commitment_aborts: u64,
}

impl SimMetrics {
    /// Committed transactions per virtual second.
    #[must_use]
    pub fn throughput_tps(&self) -> f64 {
        if self.duration_secs <= 0.0 {
            0.0
        } else {
            self.committed as f64 / self.duration_secs
        }
    }

    /// Fraction of transaction attempts that committed.
    #[must_use]
    pub fn commit_rate(&self) -> f64 {
        let attempts = self.committed + self.aborted;
        if attempts == 0 {
            0.0
        } else {
            self.committed as f64 / attempts as f64
        }
    }

    /// Messages per committed transaction (communication efficiency, §H).
    #[must_use]
    pub fn messages_per_commit(&self) -> f64 {
        if self.committed == 0 {
            f64::INFINITY
        } else {
            self.messages as f64 / self.committed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let m = SimMetrics {
            protocol: "MVTIL-early",
            committed: 900,
            aborted: 100,
            duration_secs: 10.0,
            messages: 9_000,
            ..SimMetrics::default()
        };
        assert!((m.throughput_tps() - 90.0).abs() < f64::EPSILON);
        assert!((m.commit_rate() - 0.9).abs() < f64::EPSILON);
        assert!((m.messages_per_commit() - 10.0).abs() < f64::EPSILON);
    }

    #[test]
    fn zero_division_guards() {
        let m = SimMetrics::default();
        assert_eq!(m.throughput_tps(), 0.0);
        assert_eq!(m.commit_rate(), 0.0);
        assert!(m.messages_per_commit().is_infinite());
    }
}
