//! Simulated storage servers: per-key protocol state plus service capacity.

use mvtl_common::{Key, LockMode, Timestamp, TsRange, TsSet, TxId};
use mvtl_locks::KeyLockState;
use mvtl_storage::VersionChain;
use std::collections::{BTreeMap, HashMap, HashSet};

/// A transaction waiting for a 2PL lock on a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Waiter {
    pub client: usize,
    pub attempt: u64,
    pub write: bool,
}

/// The state a server keeps for one key. Only the fields of the protocol under
/// test are used in a given run.
#[derive(Debug, Default)]
pub(crate) struct SimKeyState {
    // ---- MVTIL (interval timestamp locks + version chain) ----
    pub locks: KeyLockState,
    pub versions: VersionChain<u64>,
    // ---- MVTO+ (versions with read timestamps) ----
    pub mvto_versions: BTreeMap<Timestamp, (u64, Timestamp)>,
    pub mvto_bottom_rts: Timestamp,
    pub mvto_purged_below: Timestamp,
    // ---- 2PL (single version + readers/writer lock) ----
    pub tpl_readers: HashSet<usize>,
    pub tpl_writer: Option<usize>,
    pub tpl_value: Option<u64>,
    pub tpl_waiters: Vec<Waiter>,
}

/// Result of an MVTIL read-lock request at a server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct MvtilReadReply {
    /// Version whose value is returned (`Timestamp::ZERO` = ⊥).
    pub version: Timestamp,
    /// Contiguous interval `[version+1, e]` that was read-locked; empty when
    /// nothing useful (covering `min_needed`) could be locked.
    pub granted: TsSet,
    /// Whether unfrozen conflicting locks prevented covering the client's
    /// interval; in that case waiting/retrying may succeed once the lock
    /// holder commits (freezes) or aborts (releases).
    pub blocked_unfrozen: bool,
    /// Whether the request failed outright (needed version purged).
    pub failed: bool,
}

/// Result of an MVTIL write-lock request at a server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct MvtilWriteReply {
    /// Timestamps actually write-locked (empty when nothing could be locked).
    pub granted: TsSet,
    /// Whether unfrozen conflicting locks stood in the way (retrying may help).
    pub blocked_unfrozen: bool,
}

impl SimKeyState {
    // ------------------------------------------------------------- MVTIL ----

    /// Serves an MVTIL read: pick the version below `upper` and read-lock the
    /// contiguous prefix of `[version+1, upper]` that is free. If the prefix
    /// cannot reach `min_needed` (the bottom of the client's interval) nothing
    /// is locked; the reply then says whether the obstacle is an unfrozen lock
    /// (the paper's algorithms wait in that case — the simulated client retries
    /// after a round trip) or a frozen one (the interval is truly exhausted).
    pub(crate) fn mvtil_read(
        &mut self,
        owner: TxId,
        upper: Timestamp,
        min_needed: Timestamp,
    ) -> MvtilReadReply {
        let anchor = match self.versions.latest_before(upper) {
            Ok((t, _)) => t,
            Err(_) => {
                return MvtilReadReply {
                    version: Timestamp::ZERO,
                    granted: TsSet::new(),
                    blocked_unfrozen: false,
                    failed: true,
                }
            }
        };
        if upper < anchor.succ() {
            return MvtilReadReply {
                version: anchor,
                granted: TsSet::new(),
                blocked_unfrozen: false,
                failed: false,
            };
        }
        let desired = TsRange::new(anchor.succ(), upper);
        let analysis = self.locks.analyze(owner, LockMode::Read, desired);
        let prefix_end = analysis.contiguous_grantable_end(anchor.succ());
        let useful = prefix_end.map(|end| end >= min_needed).unwrap_or(false);
        if !useful {
            return MvtilReadReply {
                version: anchor,
                granted: TsSet::new(),
                blocked_unfrozen: !analysis.blocked_unfrozen.is_empty(),
                failed: false,
            };
        }
        let granted = TsSet::from_range(TsRange::new(
            anchor.succ(),
            prefix_end.expect("useful implies a prefix"),
        ));
        self.locks.acquire(owner, LockMode::Read, &granted);
        MvtilReadReply {
            version: anchor,
            granted,
            blocked_unfrozen: false,
            failed: false,
        }
    }

    /// Serves an MVTIL write-lock request: lock whatever part of `desired` is
    /// free right now. When nothing is free, report whether the conflict is
    /// with unfrozen locks (retry may help) or frozen ones (it cannot).
    pub(crate) fn mvtil_write_lock(&mut self, owner: TxId, desired: &TsSet) -> MvtilWriteReply {
        let mut granted = TsSet::new();
        let mut blocked_unfrozen = false;
        for range in desired.ranges() {
            let analysis = self.locks.analyze(owner, LockMode::Write, *range);
            if !analysis.blocked_unfrozen.is_empty() {
                blocked_unfrozen = true;
            }
            granted = granted.union(&analysis.grantable);
        }
        if granted.is_empty() {
            return MvtilWriteReply {
                granted,
                blocked_unfrozen,
            };
        }
        self.locks.acquire(owner, LockMode::Write, &granted);
        MvtilWriteReply {
            granted,
            blocked_unfrozen,
        }
    }

    /// Freezes the write lock at the commit timestamp and installs the value
    /// (the server-side effect of the freeze-write-lock message, §H).
    pub(crate) fn mvtil_commit_write(&mut self, owner: TxId, commit_ts: Timestamp, value: u64) {
        self.locks
            .freeze(owner, LockMode::Write, TsRange::point(commit_ts));
        self.versions.install(commit_ts, value);
        // Garbage-collect the rest of the transaction's write locks on this key.
        self.locks
            .release_unfrozen_range(owner, LockMode::Write, TsRange::all());
    }

    /// Freezes the read locks between the version read and the commit
    /// timestamp and releases everything else (the freeze-read-locks /
    /// release messages of the distributed GC).
    pub(crate) fn mvtil_commit_read(
        &mut self,
        owner: TxId,
        version: Timestamp,
        commit_ts: Timestamp,
    ) {
        if version.succ() <= commit_ts {
            self.locks.freeze(
                owner,
                LockMode::Read,
                TsRange::new(version.succ(), commit_ts),
            );
        }
        self.locks.release_unfrozen(owner);
    }

    /// Releases every unfrozen lock of the transaction (abort path, or the
    /// commitment object deciding abort after a coordinator failure).
    pub(crate) fn mvtil_release(&mut self, owner: TxId) {
        self.locks.release_unfrozen(owner);
    }

    // ------------------------------------------------------------- MVTO+ ----

    /// Serves an MVTO+ read at timestamp `ts`, bumping the read timestamp.
    /// Returns `None` when the needed version was purged.
    pub(crate) fn mvto_read(&mut self, ts: Timestamp) -> Option<Timestamp> {
        match self.mvto_versions.range(..ts).next_back() {
            Some((version, _)) => {
                let version = *version;
                let entry = self.mvto_versions.get_mut(&version).expect("just found");
                if ts > entry.1 {
                    entry.1 = ts;
                }
                Some(version)
            }
            None => {
                if self.mvto_purged_below > Timestamp::ZERO && ts <= self.mvto_purged_below {
                    return None;
                }
                if ts > self.mvto_bottom_rts {
                    self.mvto_bottom_rts = ts;
                }
                Some(Timestamp::ZERO)
            }
        }
    }

    /// Validates and installs an MVTO+ write at `ts`. Returns whether the
    /// write was accepted.
    pub(crate) fn mvto_write(&mut self, ts: Timestamp, value: u64) -> bool {
        let allowed = match self.mvto_versions.range(..ts).next_back() {
            Some((_, (_, rts))) => *rts <= ts,
            None => self.mvto_bottom_rts <= ts,
        };
        if allowed {
            self.mvto_versions.insert(ts, (value, Timestamp::ZERO));
        }
        allowed
    }

    // --------------------------------------------------------------- 2PL ----

    /// Whether `client` could take the key's 2PL lock in the requested mode.
    pub(crate) fn tpl_can_lock(&self, client: usize, write: bool) -> bool {
        if write {
            (self.tpl_writer.is_none() || self.tpl_writer == Some(client))
                && self.tpl_readers.iter().all(|r| *r == client)
        } else {
            self.tpl_writer.is_none() || self.tpl_writer == Some(client)
        }
    }

    /// Takes the 2PL lock (the caller must have checked `tpl_can_lock`).
    pub(crate) fn tpl_lock(&mut self, client: usize, write: bool) {
        if write {
            self.tpl_readers.remove(&client);
            self.tpl_writer = Some(client);
        } else {
            self.tpl_readers.insert(client);
        }
    }

    /// Releases the client's 2PL lock on this key.
    pub(crate) fn tpl_unlock(&mut self, client: usize) {
        self.tpl_readers.remove(&client);
        if self.tpl_writer == Some(client) {
            self.tpl_writer = None;
        }
    }

    // ------------------------------------------------------------ shared ----

    /// Purges versions and lock state older than `bound` (timestamp-service
    /// broadcast). Returns `(versions_removed, locks_removed)`.
    pub(crate) fn purge_below(&mut self, bound: Timestamp) -> (usize, usize) {
        let v = self.versions.purge_below(bound);
        let l = self.locks.purge_below(bound);
        // MVTO+ versions purge, keeping the most recent below the bound.
        let keep = self
            .mvto_versions
            .range(..bound)
            .next_back()
            .map(|(t, _)| *t);
        let to_remove: Vec<Timestamp> = self
            .mvto_versions
            .range(..bound)
            .map(|(t, _)| *t)
            .filter(|t| Some(*t) != keep)
            .collect();
        let mvto_removed = to_remove.len();
        for t in to_remove {
            self.mvto_versions.remove(&t);
        }
        if mvto_removed > 0 && bound > self.mvto_purged_below {
            self.mvto_purged_below = bound;
        }
        (v + mvto_removed, l)
    }

    /// Number of lock entries this key currently holds (for the Figure 6
    /// series). For MVTO+, each version's read-timestamp counts as one lock
    /// interval, which is exactly the reading §3 gives it.
    pub(crate) fn lock_count(&self) -> usize {
        let mvto_locks = self
            .mvto_versions
            .values()
            .filter(|(_, rts)| *rts > Timestamp::ZERO)
            .count()
            + usize::from(self.mvto_bottom_rts > Timestamp::ZERO);
        self.locks.stats().entries
            + mvto_locks
            + self.tpl_readers.len()
            + usize::from(self.tpl_writer.is_some())
    }

    /// Number of versions this key currently holds.
    pub(crate) fn version_count(&self) -> usize {
        self.versions.stats().versions
            + self.mvto_versions.len()
            + usize::from(self.tpl_value.is_some())
    }
}

/// One storage server: a shard of keys plus a pool of service cores.
#[derive(Debug)]
pub(crate) struct Server {
    pub keys: HashMap<Key, SimKeyState>,
    core_free: Vec<u64>,
}

impl Server {
    pub(crate) fn new(cores: usize) -> Self {
        Server {
            keys: HashMap::new(),
            core_free: vec![0; cores.max(1)],
        }
    }

    /// Reserves a service core for a request arriving at `arrival` that takes
    /// `service` microseconds; returns the completion time. Requests queue when
    /// every core is busy, which is how the cloud profile's scarce capacity
    /// translates into latency under load.
    pub(crate) fn reserve(&mut self, arrival: u64, service: u64) -> u64 {
        let idx = self
            .core_free
            .iter()
            .enumerate()
            .min_by_key(|(_, free)| **free)
            .map(|(i, _)| i)
            .expect("at least one core");
        let start = arrival.max(self.core_free[idx]);
        let done = start + service;
        self.core_free[idx] = done;
        done
    }

    pub(crate) fn key(&mut self, key: Key) -> &mut SimKeyState {
        self.keys.entry(key).or_default()
    }

    pub(crate) fn lock_count(&self) -> usize {
        self.keys.values().map(SimKeyState::lock_count).sum()
    }

    pub(crate) fn version_count(&self) -> usize {
        self.keys.values().map(SimKeyState::version_count).sum()
    }

    pub(crate) fn purge_below(&mut self, bound: Timestamp) -> (usize, usize) {
        let mut versions = 0;
        let mut locks = 0;
        for state in self.keys.values_mut() {
            let (v, l) = state.purge_below(bound);
            versions += v;
            locks += l;
        }
        (versions, locks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: u64) -> Timestamp {
        Timestamp::at(v)
    }

    #[test]
    fn mvtil_read_then_conflicting_write_shrinks() {
        let mut state = SimKeyState::default();
        let reader = TxId(1);
        let writer = TxId(2);
        let reply = state.mvtil_read(reader, ts(100), ts(20));
        assert!(!reply.failed);
        assert_eq!(reply.version, Timestamp::ZERO);
        assert!(reply.granted.contains(ts(50)));

        // A writer asking for [40, 60] gets nothing (reader holds it), and the
        // obstacle is an unfrozen lock so retrying later could help...
        let got = state.mvtil_write_lock(writer, &TsSet::from_range(TsRange::new(ts(40), ts(60))));
        assert!(got.granted.is_empty());
        assert!(got.blocked_unfrozen);
        // ...but above the reader's interval it succeeds.
        let got =
            state.mvtil_write_lock(writer, &TsSet::from_range(TsRange::new(ts(150), ts(200))));
        assert!(got.granted.contains(ts(150)));
        assert!(!got.blocked_unfrozen);

        state.mvtil_commit_write(writer, ts(150), 77);
        assert_eq!(state.versions.at(ts(150)), Some(&77));
        // After commit, only the frozen point remains of the writer's locks.
        assert!(state.locks.held(writer, LockMode::Write).contains(ts(150)));
        assert!(!state.locks.held(writer, LockMode::Write).contains(ts(180)));
    }

    #[test]
    fn mvtil_commit_read_freezes_and_releases() {
        let mut state = SimKeyState::default();
        let reader = TxId(3);
        let reply = state.mvtil_read(reader, ts(100), ts(1));
        state.mvtil_commit_read(reader, reply.version, ts(60));
        let stats = state.locks.stats();
        assert_eq!(stats.entries, stats.frozen_entries);
        // A later writer can lock above 60 but not below; the frozen read lock
        // is a permanent obstacle, so retrying is pointless.
        let writer = TxId(4);
        let below = state.mvtil_write_lock(writer, &TsSet::from_point(ts(30)));
        assert!(below.granted.is_empty());
        assert!(!below.blocked_unfrozen);
        let above = state.mvtil_write_lock(writer, &TsSet::from_point(ts(70)));
        assert!(above.granted.contains(ts(70)));
    }

    #[test]
    fn mvto_read_write_rules() {
        let mut state = SimKeyState::default();
        assert_eq!(state.mvto_read(ts(10)), Some(Timestamp::ZERO));
        // A write below the bottom read-timestamp is rejected.
        assert!(!state.mvto_write(ts(5), 1));
        assert!(state.mvto_write(ts(20), 2));
        assert_eq!(state.mvto_read(ts(30)), Some(ts(20)));
        // Writing between version 20 (rts 30) and 30 is rejected.
        assert!(!state.mvto_write(ts(25), 3));
        assert!(state.mvto_write(ts(40), 4));
    }

    #[test]
    fn tpl_lock_rules() {
        let mut state = SimKeyState::default();
        assert!(state.tpl_can_lock(1, false));
        state.tpl_lock(1, false);
        assert!(state.tpl_can_lock(2, false));
        assert!(!state.tpl_can_lock(2, true));
        assert!(state.tpl_can_lock(1, true));
        state.tpl_lock(1, true);
        assert!(!state.tpl_can_lock(2, false));
        state.tpl_unlock(1);
        assert!(state.tpl_can_lock(2, true));
    }

    #[test]
    fn purge_and_counters() {
        let mut state = SimKeyState::default();
        let w = TxId(9);
        let _ = state.mvtil_write_lock(w, &TsSet::from_point(ts(10)));
        state.mvtil_commit_write(w, ts(10), 1);
        state.mvto_write(ts(10), 1);
        state.mvto_write(ts(20), 2);
        assert!(state.version_count() >= 3);
        assert!(state.lock_count() >= 1);
        // Purging above every version keeps only the most recent one per store.
        let (versions, _locks) = state.purge_below(ts(25));
        assert_eq!(versions, 1, "the old MVTO+ version at 10 must be purged");
        assert!(state.version_count() >= 2);
    }

    #[test]
    fn server_core_queueing() {
        let mut server = Server::new(1);
        let first = server.reserve(100, 50);
        let second = server.reserve(100, 50);
        assert_eq!(first, 150);
        assert_eq!(second, 200, "single core serializes requests");
        let mut wide = Server::new(4);
        assert_eq!(wide.reserve(100, 50), 150);
        assert_eq!(wide.reserve(100, 50), 150, "separate cores run in parallel");
    }
}
