//! The discrete-event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Outcome of a server-side operation, carried back to the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpResult {
    /// The operation succeeded; the client moves on to the next one.
    Ok,
    /// The operation was blocked by an *unfrozen* conflicting lock. The paper's
    /// algorithms wait in this situation; the simulated client re-issues the
    /// operation (one more round trip) until its per-operation deadline passes.
    Retry,
    /// The operation cannot succeed (frozen conflict, purged version, empty
    /// interval): the transaction must abort.
    Abort,
}

/// Kinds of events processed by the simulation loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum EventKind {
    /// A response for the client's current operation arrived back at the
    /// client.
    OpResponse {
        /// Client the response is for.
        client: usize,
        /// Transaction attempt the response belongs to (stale responses for
        /// older attempts are ignored).
        attempt: u64,
        /// Outcome of the operation.
        outcome: OpResult,
    },
    /// A lock-wait (2PL) or pending-write-lock (§H) timeout fired.
    LockTimeout {
        /// Client whose wait timed out.
        client: usize,
        /// Attempt the wait belonged to.
        attempt: u64,
    },
    /// The timestamp service broadcasts `T = now − K`; servers purge.
    GcBroadcast,
    /// Periodic sampling of the state-size and throughput series.
    Sample,
    /// End of the measured run.
    End,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Event {
    pub time: u64,
    pub seq: u64,
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so that the BinaryHeap acts as a min-heap on (time, seq).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic future-event list.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    pub(crate) fn new() -> Self {
        EventQueue::default()
    }

    pub(crate) fn push(&mut self, time: u64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    pub(crate) fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_result_equality() {
        assert_eq!(OpResult::Ok, OpResult::Ok);
        assert_ne!(OpResult::Retry, OpResult::Abort);
    }

    #[test]
    fn pops_in_time_then_insertion_order() {
        let mut q = EventQueue::new();
        q.push(10, EventKind::Sample);
        q.push(5, EventKind::GcBroadcast);
        q.push(10, EventKind::End);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().kind, EventKind::GcBroadcast);
        let a = q.pop().unwrap();
        let b = q.pop().unwrap();
        assert_eq!(a.time, 10);
        assert_eq!(a.kind, EventKind::Sample);
        assert_eq!(b.kind, EventKind::End);
        assert!(q.pop().is_none());
    }
}
