//! The simulator's mirror of the fault-injection layer.
//!
//! A `fault=` schedule applied to the real engine via `FaultyBackend` has a
//! network-level analogue in `mvtl-sim`: `delay:` → extra message latency,
//! `drop:` → lost requests discovered by the operation deadline, `stall:` →
//! server-side stalls, `skew:` → wider client clock skew, and `crash:` → the
//! coordinator-failure path of §H. These tests pin the mapping and the
//! properties that must carry over: reproducibility per seed, progress under
//! every named schedule, and loss showing up as aborts rather than hangs.

use mvtl_faults::{named_schedule, named_schedules, FaultSpec};
use mvtl_sim::{NetworkProfile, Protocol, SimConfig, Simulation};

fn mirrored(name: &str, seed: u64) -> SimConfig {
    let spec = FaultSpec::parse(named_schedule(name).expect("named schedule")).unwrap();
    // Short transactions: the engine's `drop:` hits one prepare per commit,
    // but the network mirror loses *any* request, so a 20-op transaction
    // under 30% loss would practically never finish (0.7²⁰ ≈ 0.1%).
    SimConfig::local_cluster(Protocol::MvtilEarly)
        .clients(24)
        .keys(500)
        .ops_per_tx(4)
        .duration_secs(2)
        .seed(seed)
        .with_fault_spec(&spec)
}

#[test]
fn schedule_clauses_map_onto_the_network_profile() {
    let spec =
        FaultSpec::parse("delay:0.25:150|drop:0.1:30|stall:0.05:7|skew:2000|crash:0.3").unwrap();
    let profile = NetworkProfile::local_cluster().with_faults(&spec);
    assert_eq!(profile.delay_probability, 0.25);
    assert_eq!(profile.delay_max_us, 150);
    assert_eq!(profile.loss_probability, 0.1);
    assert_eq!(profile.stall_probability, 0.05);
    assert_eq!(profile.stall_us, 7_000);
    assert_eq!(profile.clock_skew_us, 2_000);

    // `crash:` is not a network fault: it maps onto the coordinator-failure
    // probability at the config level.
    let config = SimConfig::local_cluster(Protocol::MvtilEarly).with_fault_spec(&spec);
    assert_eq!(config.coordinator_failure_probability, 0.3);
    assert_eq!(config.network.loss_probability, 0.1);

    // An empty spec changes nothing.
    let base = SimConfig::local_cluster(Protocol::MvtilLate);
    let same = base.clone().with_fault_spec(&FaultSpec::default());
    assert_eq!(same.network, base.network);
    assert_eq!(
        same.coordinator_failure_probability,
        base.coordinator_failure_probability
    );
}

#[test]
fn every_named_schedule_makes_progress_in_the_simulator() {
    for (name, _) in named_schedules() {
        let metrics = Simulation::new(mirrored(name, 7)).run();
        assert!(
            metrics.committed > 0,
            "{name}: the mirrored schedule starved the simulated system \
             (committed 0, aborted {})",
            metrics.aborted
        );
    }
}

#[test]
fn mirrored_fault_runs_are_deterministic_per_seed() {
    for (name, _) in named_schedules() {
        let a = Simulation::new(mirrored(name, 42)).run();
        let b = Simulation::new(mirrored(name, 42)).run();
        assert_eq!(a.committed, b.committed, "{name}: commits diverged");
        assert_eq!(a.aborted, b.aborted, "{name}: aborts diverged");
        assert_eq!(a.messages, b.messages, "{name}: message counts diverged");
    }
    // And the seed matters: at least one schedule must diverge under a
    // different seed (all of them randomize the workload if nothing else).
    let a = Simulation::new(mirrored("drop-prepare", 42)).run();
    let c = Simulation::new(mirrored("drop-prepare", 43)).run();
    assert!(
        a.committed != c.committed || a.messages != c.messages,
        "seed had no observable effect"
    );
}

#[test]
fn lost_requests_surface_as_aborts_not_hangs() {
    // A brutal 40% request loss: the run must still terminate (lost requests
    // are discovered by the op deadline) and losses must cost something —
    // more aborts than the loss-free control, not silence.
    let spec = FaultSpec::parse("drop:0.4").unwrap();
    let base = SimConfig::local_cluster(Protocol::MvtilEarly)
        .clients(24)
        .keys(500)
        .ops_per_tx(4)
        .duration_secs(2)
        .seed(11);
    let clean = Simulation::new(base.clone()).run();
    let lossy = Simulation::new(base.with_fault_spec(&spec)).run();
    assert!(lossy.committed > 0, "loss starved the system completely");
    assert!(
        lossy.aborted > clean.aborted,
        "40% loss must abort more than the clean run ({} vs {})",
        lossy.aborted,
        clean.aborted
    );
    assert!(
        lossy.committed < clean.committed,
        "40% loss cannot commit as much as the clean run ({} vs {})",
        lossy.committed,
        clean.committed
    );
}

#[test]
fn stalls_and_delays_slow_the_mirror_down() {
    // The delay/stall clauses must be wired into the latency samplers, not
    // just stored: throughput under them drops measurably.
    let spec = FaultSpec::parse("delay:0.9:4000|stall:0.5:4").unwrap();
    let base = SimConfig::local_cluster(Protocol::MvtilEarly)
        .clients(16)
        .keys(1_000)
        .duration_secs(2)
        .seed(3);
    let clean = Simulation::new(base.clone()).run();
    let slowed = Simulation::new(base.with_fault_spec(&spec)).run();
    assert!(slowed.committed > 0);
    assert!(
        (slowed.committed as f64) < 0.9 * clean.committed as f64,
        "injected delays/stalls did not slow the system: {} vs {}",
        slowed.committed,
        clean.committed
    );
}

#[test]
fn crash_schedule_exercises_the_commitment_recovery_path() {
    // The crash clause maps to coordinator failures, which the simulated
    // system resolves through the §H commitment-object timeout: the run
    // terminates and recovery aborts are recorded.
    let spec = FaultSpec::parse(named_schedule("crash-mid-prepare").unwrap()).unwrap();
    let metrics = Simulation::new(
        SimConfig::local_cluster(Protocol::MvtilEarly)
            .clients(24)
            .keys(500)
            .duration_secs(2)
            .seed(21)
            .with_fault_spec(&spec),
    )
    .run();
    assert!(metrics.committed > 0, "crashes starved the system");
    assert!(
        metrics.commitment_aborts > 0,
        "a 25% coordinator-crash rate never exercised §H recovery"
    );
}
